"""Training loop for the joint representation model (Section 3.2.1).

Implements the paper's recipe: minibatch SGD back-propagation, learning
rate decayed to 90% per epoch, early stopping on a held-out validation
slice, convergence expected well under 20 epochs.  The trainer restores
the best-validation parameters when stopping.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import TrainingConfig
from repro.core.model import JointUserEventModel
from repro.nn.losses import contrastive_loss
from repro.nn.optim import SGD, Adagrad, ExponentialDecay, Optimizer
from repro.text.documents import EncodedEvent, EncodedUser

__all__ = ["TrainingHistory", "RepresentationTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of one training run."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)


def _make_optimizer(
    model: JointUserEventModel, config: TrainingConfig
) -> Optimizer:
    if config.optimizer == "adagrad":
        return Adagrad(model.store, learning_rate=config.learning_rate)
    return SGD(
        model.store,
        learning_rate=config.learning_rate,
        momentum=config.momentum,
    )


class RepresentationTrainer:
    """Fits a :class:`JointUserEventModel` on (user, event, label) pairs."""

    def __init__(self, model: JointUserEventModel, config: TrainingConfig):
        self.model = model
        self.config = config

    def fit(
        self,
        users: Sequence[EncodedUser],
        events: Sequence[EncodedEvent],
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train on aligned pair sequences.

        The trailing ``validation_fraction`` of pairs is held out for
        early stopping — with time-ordered input this mirrors the
        paper's date-disjoint evaluation discipline.

        ``sample_weight`` enables weighted positives (e.g. clicks as
        weak feedback, the paper's future-work direction); validation
        loss stays unweighted so early stopping tracks the target task.

        Returns the :class:`TrainingHistory`; the model is left holding
        the best-validation parameters.
        """
        if not len(users) == len(events) == len(labels):
            raise ValueError("users, events and labels must be aligned")
        if len(users) == 0:
            raise ValueError("cannot train on an empty pair set")
        labels = np.asarray(labels, dtype=np.float64)
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != labels.shape:
                raise ValueError("sample_weight must align with labels")

        num_validation = int(len(users) * self.config.validation_fraction)
        train_slice = slice(0, len(users) - num_validation)
        val_slice = slice(len(users) - num_validation, len(users))
        train_users = list(users[train_slice])
        train_events = list(events[train_slice])
        train_labels = labels[train_slice]
        train_weights = (
            sample_weight[train_slice] if sample_weight is not None else None
        )
        val_users = list(users[val_slice])
        val_events = list(events[val_slice])
        val_labels = labels[val_slice]

        optimizer = _make_optimizer(self.model, self.config)
        schedule = ExponentialDecay(
            self.config.learning_rate, self.config.lr_decay
        )
        rng = np.random.default_rng(self.config.seed)
        history = TrainingHistory()
        best_val = np.inf
        best_state: dict[str, np.ndarray] | None = None
        epochs_since_best = 0

        event_lengths = np.array(
            [event.text_ids.shape[0] for event in train_events]
        )
        for epoch in range(self.config.epochs):
            rate = schedule.apply(optimizer, epoch)
            order = np.arange(len(train_users))
            if self.config.shuffle:
                rng.shuffle(order)
                # Length bucketing: sort each chunk of ~8 batches by
                # event length so batches pad to similar lengths.
                # Chunk membership stays random across epochs.
                chunk = self.config.batch_size * 8
                for start in range(0, len(order), chunk):
                    segment = order[start : start + chunk]
                    order[start : start + chunk] = segment[
                        np.argsort(event_lengths[segment], kind="stable")
                    ]
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, len(order), self.config.batch_size):
                index = order[start : start + self.config.batch_size]
                batch_users = [train_users[i] for i in index]
                batch_events = [train_events[i] for i in index]
                batch_labels = train_labels[index]
                batch_weights = (
                    train_weights[index] if train_weights is not None else None
                )
                optimizer.zero_grad()
                loss = self.model.train_step(
                    batch_users,
                    batch_events,
                    batch_labels,
                    sample_weight=batch_weights,
                )
                optimizer.step()
                epoch_loss += loss
                num_batches += 1
            mean_train_loss = epoch_loss / max(num_batches, 1)
            val_loss = (
                self.evaluate_loss(val_users, val_events, val_labels)
                if num_validation
                else mean_train_loss
            )
            history.train_losses.append(mean_train_loss)
            history.validation_losses.append(val_loss)
            history.learning_rates.append(rate)
            if self.config.log_every and (epoch + 1) % self.config.log_every == 0:
                print(
                    f"[trainer] epoch {epoch + 1}/{self.config.epochs} "
                    f"train={mean_train_loss:.4f} val={val_loss:.4f} lr={rate:.4f}"
                )
            if val_loss < best_val - 1.0e-6:
                best_val = val_loss
                history.best_epoch = epoch
                best_state = self.model.store.state_dict()
                epochs_since_best = 0
            else:
                epochs_since_best += 1
                if epochs_since_best >= self.config.patience:
                    history.stopped_early = True
                    break
        if best_state is not None:
            self.model.store.load_state_dict(best_state)
        return history

    def evaluate_loss(
        self,
        users: Sequence[EncodedUser],
        events: Sequence[EncodedEvent],
        labels: np.ndarray,
        batch_size: int = 256,
    ) -> float:
        """Mean Equation-1 loss over a pair set, without training."""
        if len(users) == 0:
            return 0.0
        total = 0.0
        for start in range(0, len(users), batch_size):
            stop = start + batch_size
            sim = self.model.similarity(users[start:stop], events[start:stop])
            loss, _ = contrastive_loss(
                sim,
                np.asarray(labels[start:stop], dtype=np.float64),
                margin=self.model.config.margin,
            )
            total += loss * len(sim)
        return total / len(users)
