"""The joint user-event representation model (paper Figure 4).

Two parallel towers connected only by a cosine head.  The public
surface is:

* :meth:`JointUserEventModel.similarity` — s_θ(u, e) for batches of
  encoded pairs;
* :meth:`JointUserEventModel.train_step` — one minibatch update with
  the Equation-1 contrastive loss;
* :meth:`JointUserEventModel.encode_users` /
  :meth:`~JointUserEventModel.encode_events` — the cached
  representation vectors v_u / v_e handed to the combiner (Section 4).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import JointModelConfig
from repro.core.tower import EventTower, UserTower
from repro.nn.batching import PaddedBatch, pad_batch
from repro.nn.cosine import cosine_similarity, cosine_similarity_backward
from repro.nn.losses import contrastive_loss
from repro.nn.params import ParamStore
from repro.text.documents import DocumentEncoder, EncodedEvent, EncodedUser

__all__ = ["JointUserEventModel"]


class JointUserEventModel:
    """Parallel CNN towers + cosine head + contrastive training."""

    def __init__(self, config: JointModelConfig, encoder: DocumentEncoder):
        self.config = config
        self.encoder = encoder
        self.store = ParamStore(dtype=config.dtype)
        rng = np.random.default_rng(config.seed)
        self.user_tower = UserTower(
            self.store,
            config,
            text_vocab_size=encoder.user_text_vocab.size,
            id_vocab_size=encoder.user_id_vocab.size,
            rng=rng,
        )
        self.event_tower = EventTower(
            self.store,
            config,
            text_vocab_size=encoder.event_text_vocab.size,
            rng=rng,
        )
        self._min_length = max(config.text_windows)

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------

    def user_batches(
        self, users: Sequence[EncodedUser]
    ) -> dict[str, PaddedBatch]:
        """Pad a list of encoded users into per-source batches."""
        return {
            UserTower.TEXT_SOURCE: pad_batch(
                [user.text_ids for user in users], min_length=self._min_length
            ),
            UserTower.ID_SOURCE: pad_batch(
                [user.id_feature_ids for user in users], min_length=1
            ),
        }

    def event_batches(
        self, events: Sequence[EncodedEvent]
    ) -> dict[str, PaddedBatch]:
        """Pad a list of encoded events into per-source batches."""
        return {
            EventTower.TEXT_SOURCE: pad_batch(
                [event.text_ids for event in events], min_length=self._min_length
            )
        }

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def forward_pairs(
        self, users: Sequence[EncodedUser], events: Sequence[EncodedEvent]
    ) -> tuple[np.ndarray, dict]:
        """Similarity of aligned (user, event) pairs, with caches."""
        if len(users) != len(events):
            raise ValueError(
                f"pair mismatch: {len(users)} users vs {len(events)} events"
            )
        user_rep, user_cache = self.user_tower.forward(self.user_batches(users))
        event_rep, event_cache = self.event_tower.forward(
            self.event_batches(events)
        )
        sim, cos_cache = cosine_similarity(user_rep, event_rep)
        cache = {"user": user_cache, "event": event_cache, "cosine": cos_cache}
        return sim, cache

    def backward_from_similarity(
        self, grad_similarity: np.ndarray, cache: dict
    ) -> None:
        """Back-propagate d(loss)/d(similarity) through both towers."""
        grad_user, grad_event = cosine_similarity_backward(
            grad_similarity, cache["cosine"]
        )
        self.user_tower.backward(grad_user, cache["user"])
        self.event_tower.backward(grad_event, cache["event"])

    def pair_loss(
        self,
        users: Sequence[EncodedUser],
        events: Sequence[EncodedEvent],
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray, dict]:
        """Equation-1 loss on a batch of pairs.

        Returns ``(loss, grad_similarity, cache)`` so callers can
        choose whether to back-propagate.
        """
        sim, cache = self.forward_pairs(users, events)
        loss, grad_sim = contrastive_loss(
            sim, labels, margin=self.config.margin, sample_weight=sample_weight
        )
        return loss, grad_sim, cache

    def train_step(
        self,
        users: Sequence[EncodedUser],
        events: Sequence[EncodedEvent],
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> float:
        """Accumulate gradients for one minibatch; returns the loss.

        The caller owns ``optimizer.zero_grad()`` / ``optimizer.step()``.
        """
        loss, grad_sim, cache = self.pair_loss(
            users, events, labels, sample_weight=sample_weight
        )
        self.backward_from_similarity(grad_sim, cache)
        return loss

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def similarity(
        self, users: Sequence[EncodedUser], events: Sequence[EncodedEvent]
    ) -> np.ndarray:
        """s_θ(u, e) for aligned pairs (no gradient bookkeeping kept)."""
        sim, _ = self.forward_pairs(users, events)
        return sim

    def encode_users(
        self, users: Sequence[EncodedUser], batch_size: int = 256
    ) -> np.ndarray:
        """Representation vectors v_u, shape ``(n, representation_dim)``."""
        chunks = []
        for start in range(0, len(users), batch_size):
            batch = users[start : start + batch_size]
            rep, _ = self.user_tower.forward(self.user_batches(batch))
            chunks.append(rep)
        return np.concatenate(chunks, axis=0)

    def encode_events(
        self, events: Sequence[EncodedEvent], batch_size: int = 256
    ) -> np.ndarray:
        """Representation vectors v_e, shape ``(n, representation_dim)``."""
        chunks = []
        for start in range(0, len(events), batch_size):
            batch = events[start : start + batch_size]
            rep, _ = self.event_tower.forward(self.event_batches(batch))
            chunks.append(rep)
        return np.concatenate(chunks, axis=0)

    def num_parameters(self) -> int:
        """Total scalar weights across both towers (the size of θ)."""
        return self.store.num_values()
