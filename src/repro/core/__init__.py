"""The paper's primary contribution: joint user-event representation
learning (parallel CNN towers, cosine head, contrastive training),
plus the Siamese event initializer, the serving facade, and the
Section-5.3 analysis tooling.
"""

from repro.core.analysis import WordAttribution, format_trace, trace_top_words
from repro.core.config import JointModelConfig, TrainingConfig
from repro.core.extraction import ConvExtractionModule
from repro.core.model import JointUserEventModel
from repro.core.persistence import load_model_bundle, save_model_bundle
from repro.core.service import RepresentationService, ScoredEvent
from repro.core.siamese import SiameseEventInitializer, SiameseHistory
from repro.core.similar_events import (
    SimilarEvent,
    SimilarEventIndex,
    lexical_overlap,
)
from repro.core.tower import EventTower, Tower, UserTower
from repro.core.trainer import RepresentationTrainer, TrainingHistory

__all__ = [
    "ConvExtractionModule",
    "EventTower",
    "JointModelConfig",
    "JointUserEventModel",
    "RepresentationService",
    "RepresentationTrainer",
    "ScoredEvent",
    "SimilarEvent",
    "SimilarEventIndex",
    "SiameseEventInitializer",
    "SiameseHistory",
    "Tower",
    "TrainingConfig",
    "TrainingHistory",
    "UserTower",
    "WordAttribution",
    "format_trace",
    "load_model_bundle",
    "lexical_overlap",
    "save_model_bundle",
    "trace_top_words",
]
