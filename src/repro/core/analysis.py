"""Pooling trace-back analysis (paper Section 5.3, Figure 7).

For a trained event tower and one event text, trace each of the
pooled output dimensions back to the convolution window that achieved
the max value, then credit the words overlapping that window:

    "For a max-value window covering d words, we consider each word
    contributing 1/d to the pooling layer.  We go through all 64
    max-value windows and sort all words based on their accumulated
    contribution to the max values."

This is computed per window size (1, 3, 5), reproducing the
subscript annotations of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tower import EventTower
from repro.nn.batching import pad_batch
from repro.text.documents import DocumentEncoder
from repro.text.normalize import split_words

__all__ = ["WordAttribution", "trace_top_words", "format_trace"]


@dataclass(frozen=True)
class WordAttribution:
    """A word and its accumulated contribution to the pooling layer."""

    word: str
    weight: float
    word_index: int


def _attribute_module(
    weights: np.ndarray,
    token_word_index: np.ndarray,
    window: int,
    num_words: int,
    soft: bool,
) -> np.ndarray:
    """Accumulate per-word contributions for one extraction module.

    Args:
        weights: ``(num_windows, out_dim)`` softmax pooling weights of
            the single analyzed example.
        token_word_index: originating word index of each token.
        window: the module's convolution window size.
        num_words: number of words in the analyzed text.
        soft: if False (paper behaviour) only the argmax window of each
            output dimension is credited; if True, every window is
            credited by its softmax weight.

    Returns:
        ``(num_words,)`` accumulated contribution per word.
    """
    num_windows, out_dim = weights.shape
    contributions = np.zeros(num_words, dtype=np.float64)
    # Pre-compute the distinct words covered by each window.
    window_words: list[list[int]] = []
    num_tokens = len(token_word_index)
    for start in range(num_windows):
        covered = token_word_index[start : min(start + window, num_tokens)]
        window_words.append(sorted(set(int(w) for w in covered)))
    if soft:
        for start, words in enumerate(window_words):
            if not words:
                continue
            credit = weights[start].sum() / len(words)
            for word in words:
                contributions[word] += credit
        return contributions
    top_windows = weights.argmax(axis=0)
    for dim in range(out_dim):
        words = window_words[top_windows[dim]]
        if not words:
            continue
        for word in words:
            contributions[word] += 1.0 / len(words)
    return contributions


def trace_top_words(
    tower: EventTower,
    encoder: DocumentEncoder,
    text: str,
    top_k: int = 5,
    soft: bool = False,
) -> dict[int, list[WordAttribution]]:
    """Top contributing words per convolution window size.

    Returns a mapping ``window_size -> top_k WordAttributions`` sorted
    by descending contribution (ties broken by word position for
    determinism).
    """
    words = split_words(text)
    if not words:
        raise ValueError("cannot analyze an empty text")
    encoded = encoder.encode_event_text(text)
    min_length = max(module.window for module in tower.text_modules)
    batch = pad_batch([encoded.text_ids], min_length=min_length)
    result: dict[int, list[WordAttribution]] = {}
    for module in tower.text_modules:
        _, cache = module.forward(batch)
        weights = module.pooling_attribution(cache)[0]
        contributions = _attribute_module(
            weights,
            encoded.text_word_index,
            module.window,
            num_words=len(words),
            soft=soft,
        )
        order = sorted(
            range(len(words)),
            key=lambda index: (-contributions[index], index),
        )
        result[module.window] = [
            WordAttribution(words[index], float(contributions[index]), index)
            for index in order[:top_k]
            if contributions[index] > 0.0
        ]
    return result


def format_trace(
    text: str, trace: dict[int, list[WordAttribution]], max_chars: int = 400
) -> str:
    """Render a Figure-7 style annotation: each top word followed by
    the subscripted window sizes under which it ranked top."""
    windows_by_word: dict[int, list[int]] = {}
    for window, attributions in sorted(trace.items()):
        for attribution in attributions:
            windows_by_word.setdefault(attribution.word_index, []).append(window)
    words = split_words(text)
    rendered = []
    for index, word in enumerate(words):
        if index in windows_by_word:
            subscripts = ",".join(str(w) for w in sorted(windows_by_word[index]))
            rendered.append(f"**{word}**_{{{subscripts}}}")
        else:
            rendered.append(word)
    out = " ".join(rendered)
    if len(out) > max_chars:
        out = out[:max_chars] + "..."
    return out
