"""Per-entity sub-models ("towers"), paper Figure 4 (left/right halves).

A tower concatenates the outputs of its extraction modules, passes
them through an affine hidden layer with tanh, then projects into the
representation layer — which also receives the concatenated feature
vector directly through a bypass projection ("similar to the residual
net idea"), followed by a final tanh:

    f = concat(module outputs)
    h = tanh(W_h f + b_h)
    r = tanh(W_r h + b_r + W_bypass f)

The user tower owns four modules (three text windows + one categorical
window-1 module over two lookup tables); the event tower owns three
text modules over one lookup table.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import JointModelConfig
from repro.core.extraction import ConvExtractionModule
from repro.nn.batching import PaddedBatch
from repro.nn.layers import Affine, Concat, Embedding, Tanh
from repro.nn.params import ParamStore

__all__ = ["Tower", "UserTower", "EventTower"]


class Tower:
    """A stack of extraction modules + hidden + representation layers.

    Args:
        store: shared parameter store.
        name: parameter-name prefix (``"user"`` / ``"event"``).
        modules: ``(source_key, module)`` pairs; ``source_key`` selects
            which :class:`PaddedBatch` each module reads from the
            forward input dict.
        config: architecture dims.
        rng: weight initializer generator.
    """

    def __init__(
        self,
        store: ParamStore,
        name: str,
        modules: list[tuple[str, ConvExtractionModule]],
        config: JointModelConfig,
        rng: np.random.Generator,
    ):
        self.name = name
        self.modules = modules
        feature_dim = config.module_dim * len(modules)
        self.feature_dim = feature_dim
        self.hidden = Affine(
            store, f"{name}.hidden", feature_dim, config.hidden_dim, rng
        )
        self.project = Affine(
            store,
            f"{name}.project",
            config.hidden_dim,
            config.representation_dim,
            rng,
        )
        self.bypass = Affine(
            store,
            f"{name}.bypass",
            feature_dim,
            config.representation_dim,
            rng,
        )

    def forward(
        self, batches: dict[str, PaddedBatch]
    ) -> tuple[np.ndarray, dict]:
        """Encode a batch of entities into representation vectors.

        Args:
            batches: one padded batch per source key.

        Returns:
            ``(representations, cache)`` with representations of shape
            ``(batch, representation_dim)``.
        """
        module_outputs = []
        module_caches = []
        for source_key, module in self.modules:
            pooled, cache = module.forward(batches[source_key])
            module_outputs.append(pooled)
            module_caches.append(cache)
        features, concat_cache = Concat.forward(module_outputs)
        hidden_pre, hidden_cache = self.hidden.forward(features)
        hidden_out, hidden_tanh_cache = Tanh.forward(hidden_pre)
        projected, project_cache = self.project.forward(hidden_out)
        bypassed, bypass_cache = self.bypass.forward(features)
        representation, rep_tanh_cache = Tanh.forward(projected + bypassed)
        cache = {
            "modules": module_caches,
            "concat": concat_cache,
            "hidden": hidden_cache,
            "hidden_tanh": hidden_tanh_cache,
            "project": project_cache,
            "bypass": bypass_cache,
            "rep_tanh": rep_tanh_cache,
        }
        return representation, cache

    def backward(self, grad_representation: np.ndarray, cache: dict) -> None:
        """Back-propagate through the tower, accumulating all gradients."""
        grad_pre_rep = Tanh.backward(grad_representation, cache["rep_tanh"])
        grad_features_bypass = self.bypass.backward(grad_pre_rep, cache["bypass"])
        grad_hidden_out = self.project.backward(grad_pre_rep, cache["project"])
        grad_hidden_pre = Tanh.backward(grad_hidden_out, cache["hidden_tanh"])
        grad_features_hidden = self.hidden.backward(grad_hidden_pre, cache["hidden"])
        grad_features = grad_features_bypass + grad_features_hidden
        module_grads = Concat.backward(grad_features, cache["concat"])
        for (source_key, module), grad, module_cache in zip(
            self.modules, module_grads, cache["modules"]
        ):
            module.backward(grad, module_cache)


class UserTower(Tower):
    """User sub-model: three text modules + one categorical module.

    Reads two sources from the input dict: ``"text"`` (letter-trigram
    ids of the user document) and ``"ids"`` (unigram ids of the
    categorical feature-value tokens).
    """

    TEXT_SOURCE = "text"
    ID_SOURCE = "ids"

    def __init__(
        self,
        store: ParamStore,
        config: JointModelConfig,
        text_vocab_size: int,
        id_vocab_size: int,
        rng: np.random.Generator,
    ):
        self.text_embedding = Embedding(
            store,
            "user.text_embedding",
            text_vocab_size,
            config.embedding_dim,
            rng,
            init_scale=config.embedding_init_scale,
        )
        self.id_embedding = Embedding(
            store,
            "user.id_embedding",
            id_vocab_size,
            config.embedding_dim,
            rng,
            init_scale=config.embedding_init_scale,
        )
        modules: list[tuple[str, ConvExtractionModule]] = [
            (
                self.TEXT_SOURCE,
                ConvExtractionModule(
                    store,
                    f"user.text_conv_w{window}",
                    self.text_embedding,
                    window,
                    config.module_dim,
                    rng,
                ),
            )
            for window in config.text_windows
        ]
        modules.append(
            (
                self.ID_SOURCE,
                ConvExtractionModule(
                    store,
                    "user.id_conv_w1",
                    self.id_embedding,
                    1,
                    config.module_dim,
                    rng,
                ),
            )
        )
        super().__init__(store, "user", modules, config, rng)


class EventTower(Tower):
    """Event sub-model: three text modules over one lookup table."""

    TEXT_SOURCE = "text"

    def __init__(
        self,
        store: ParamStore,
        config: JointModelConfig,
        text_vocab_size: int,
        rng: np.random.Generator,
        name: str = "event",
    ):
        self.text_embedding = Embedding(
            store,
            f"{name}.text_embedding",
            text_vocab_size,
            config.embedding_dim,
            rng,
            init_scale=config.embedding_init_scale,
        )
        modules = [
            (
                self.TEXT_SOURCE,
                ConvExtractionModule(
                    store,
                    f"{name}.text_conv_w{window}",
                    self.text_embedding,
                    window,
                    config.module_dim,
                    rng,
                ),
            )
            for window in config.text_windows
        ]
        super().__init__(store, name, modules, config, rng)

    @property
    def text_modules(self) -> list[ConvExtractionModule]:
        return [module for _, module in self.modules]
