"""Similar-event discovery (paper Section 5.3, Table 3).

"Using the event representation model alone, we derive a
representation vector for each event and compute event-to-event
similarity just as we compute user-to-event similarity.  Setting a
high threshold in similarity score (0.95), we identify many event
pairs that are similar in semantic topics but do not necessarily
overlap much in the word space."

:class:`SimilarEventIndex` is a small exact-cosine kNN index over
event representation vectors, with a lexical-overlap measure so the
"semantically similar but lexically distinct" property can be
quantified.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.entities import Event
from repro.nn.cosine import unit_rows
from repro.text.normalize import split_words

__all__ = ["SimilarEvent", "SimilarEventIndex", "lexical_overlap"]


def lexical_overlap(text_a: str, text_b: str) -> float:
    """Jaccard overlap of the word sets of two texts."""
    words_a = set(split_words(text_a))
    words_b = set(split_words(text_b))
    if not words_a and not words_b:
        return 1.0
    union = words_a | words_b
    if not union:
        return 1.0
    return len(words_a & words_b) / len(union)


@dataclass(frozen=True)
class SimilarEvent:
    """One retrieved neighbour of a seed event."""

    event: Event
    similarity: float
    word_overlap: float


class SimilarEventIndex:
    """Exact cosine nearest-neighbour index over event vectors."""

    def __init__(self, events: Sequence[Event], vectors: np.ndarray):
        if len(events) != vectors.shape[0]:
            raise ValueError(
                f"{len(events)} events but {vectors.shape[0]} vectors"
            )
        self.events = list(events)
        self._unit = unit_rows(vectors)
        self._id_to_row = {
            event.event_id: row for row, event in enumerate(self.events)
        }

    def __len__(self) -> int:
        return len(self.events)

    def similarities_to(self, seed_event_id: int) -> np.ndarray:
        """Cosine similarity of every indexed event to the seed."""
        row = self._id_to_row.get(seed_event_id)
        if row is None:
            raise KeyError(f"event {seed_event_id} not in index")
        return self._unit @ self._unit[row]

    def query(
        self,
        seed_event_id: int,
        top_k: int = 3,
        min_similarity: float = 0.0,
    ) -> list[SimilarEvent]:
        """Top-k most similar events to the seed (seed excluded).

        Args:
            seed_event_id: id of the seed event (must be indexed).
            top_k: number of neighbours to return.
            min_similarity: drop neighbours below this cosine (the
                paper's Table 3 uses 0.95).
        """
        row = self._id_to_row[seed_event_id]
        sims = self.similarities_to(seed_event_id)
        order = np.argsort(-sims)
        seed = self.events[row]
        results: list[SimilarEvent] = []
        for candidate_row in order:
            if candidate_row == row:
                continue
            similarity = float(sims[candidate_row])
            if similarity < min_similarity:
                break
            neighbour = self.events[candidate_row]
            results.append(
                SimilarEvent(
                    event=neighbour,
                    similarity=similarity,
                    word_overlap=lexical_overlap(
                        seed.text_document(), neighbour.text_document()
                    ),
                )
            )
            if len(results) >= top_k:
                break
        return results

    def pairs_above(self, threshold: float) -> list[tuple[int, int, float]]:
        """All (event_id, event_id, similarity) pairs at/above *threshold*.

        Mirrors the paper's protocol of harvesting high-similarity
        pairs across the corpus.
        """
        gram = self._unit @ self._unit.T
        rows, cols = np.where(np.triu(gram, k=1) >= threshold)
        return [
            (
                self.events[r].event_id,
                self.events[c].event_id,
                float(gram[r, c]),
            )
            for r, c in zip(rows, cols)
        ]
