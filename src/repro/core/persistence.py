"""Model bundle persistence.

A trained :class:`~repro.core.model.JointUserEventModel` is only
usable together with its document encoder (the DF-filtered
vocabularies fix the token-id space) and its architecture config.
:func:`save_model_bundle` / :func:`load_model_bundle` persist all
three as one directory so a model trained in one process can serve in
another:

    bundle/
      config.json     # JointModelConfig fields
      vocabs.json     # the three vocabularies
      params.npz      # every network parameter
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.config import JointModelConfig
from repro.core.model import JointUserEventModel
from repro.text.documents import DocumentEncoder
from repro.text.vocab import Vocabulary

__all__ = ["save_model_bundle", "load_model_bundle"]

_CONFIG_FILE = "config.json"
_VOCABS_FILE = "vocabs.json"
_PARAMS_FILE = "params.npz"


def save_model_bundle(model: JointUserEventModel, directory: str | Path) -> Path:
    """Write the model, its encoder and its config under *directory*.

    Returns the bundle path.  Overwrites existing bundle files.
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    config_payload = asdict(model.config)
    config_payload["text_windows"] = list(model.config.text_windows)
    (path / _CONFIG_FILE).write_text(
        json.dumps(config_payload, indent=2), encoding="utf-8"
    )
    encoder = model.encoder
    vocab_payload = {
        "user_text": encoder.user_text_vocab.to_dict(),
        "user_id": encoder.user_id_vocab.to_dict(),
        "event_text": encoder.event_text_vocab.to_dict(),
        "trigram_n": encoder._trigram_tokenizer.n,
    }
    (path / _VOCABS_FILE).write_text(
        json.dumps(vocab_payload), encoding="utf-8"
    )
    model.store.save(str(path / _PARAMS_FILE))
    return path


def load_model_bundle(directory: str | Path) -> JointUserEventModel:
    """Reconstruct a model saved by :func:`save_model_bundle`."""
    path = Path(directory)
    for required in (_CONFIG_FILE, _VOCABS_FILE, _PARAMS_FILE):
        if not (path / required).exists():
            raise FileNotFoundError(f"bundle is missing {required}: {path}")
    config_payload = json.loads((path / _CONFIG_FILE).read_text(encoding="utf-8"))
    config_payload["text_windows"] = tuple(config_payload["text_windows"])
    config = JointModelConfig(**config_payload)
    vocab_payload = json.loads((path / _VOCABS_FILE).read_text(encoding="utf-8"))
    encoder = DocumentEncoder(
        user_text_vocab=Vocabulary.from_dict(vocab_payload["user_text"]),
        user_id_vocab=Vocabulary.from_dict(vocab_payload["user_id"]),
        event_text_vocab=Vocabulary.from_dict(vocab_payload["event_text"]),
        trigram_n=vocab_payload["trigram_n"],
    )
    model = JointUserEventModel(config, encoder)
    model.store.load(str(path / _PARAMS_FILE))
    return model
