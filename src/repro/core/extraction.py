"""The convolutional feature extraction module (paper Figure 2).

One module = tokenized input → lookup table → windowed convolution →
log-sum-exp pooling → fixed-length feature vector.  Modules that read
the same input source (e.g. the three text modules with windows 1, 3,
5) share a single lookup table, matching the paper's per-source token
budget accounting (236k / 78k / 99k table rows for one user-text, one
user-categorical and one event-text table).
"""

from __future__ import annotations

import numpy as np

from repro.nn.batching import PaddedBatch, window_mask
from repro.nn.layers import Embedding, WindowedConv
from repro.nn.params import ParamStore
from repro.nn.pooling import log_sum_exp_pool, log_sum_exp_pool_backward

__all__ = ["ConvExtractionModule"]


class ConvExtractionModule:
    """Embedding (shared) + windowed convolution + soft-max pooling.

    Args:
        store: parameter store to register the convolution weights in.
        name: unique parameter-name prefix.
        embedding: the (possibly shared) lookup table for this source.
        window: convolution window size ``d``.
        out_dim: pooled output dimension (paper: 64).
        rng: generator for weight initialization.
    """

    def __init__(
        self,
        store: ParamStore,
        name: str,
        embedding: Embedding,
        window: int,
        out_dim: int,
        rng: np.random.Generator,
    ):
        self.name = name
        self.embedding = embedding
        self.window = window
        self.out_dim = out_dim
        self.conv = WindowedConv(
            store, name, window, embedding.dim, out_dim, rng
        )

    def forward(self, batch: PaddedBatch) -> tuple[np.ndarray, dict]:
        """``(batch of sequences)`` → ``(batch, out_dim)`` pooled features.

        The batch must be padded to at least ``window`` columns
        (``pad_batch(..., min_length=window)``).
        """
        token_vectors, emb_cache = self.embedding.forward(batch.ids)
        window_values, conv_cache = self.conv.forward(token_vectors)
        valid = window_mask(batch.mask, self.window)
        pooled, pool_cache = log_sum_exp_pool(window_values, valid)
        cache = {
            "emb": emb_cache,
            "conv": conv_cache,
            "pool": pool_cache,
        }
        return pooled, cache

    def backward(self, grad_out: np.ndarray, cache: dict) -> None:
        """Accumulate gradients into the conv weights and lookup table."""
        grad_windows = log_sum_exp_pool_backward(grad_out, cache["pool"])
        grad_tokens = self.conv.backward(grad_windows, cache["conv"])
        self.embedding.backward(grad_tokens, cache["emb"])

    def pooling_attribution(self, cache: dict) -> np.ndarray:
        """Softmax window weights from the last forward pass.

        Shape ``(batch, windows, out_dim)`` — the share of each pooled
        output dimension attributable to each window.  Used by the
        Figure-7 trace-back analysis.
        """
        return cache["pool"]["weights"]
