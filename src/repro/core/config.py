"""Configuration for the joint representation model.

The paper's architecture (Sections 3.1-3.2): 64-d lookup tables, 64-d
extraction-module outputs, text windows {1, 3, 5}, a 256-node hidden
layer and a 128-node representation layer per tower, contrastive
margin θ_r = 0, learning rate decayed ×0.9 per epoch, convergence in
under 20 epochs.

Three presets scale those dims to different compute budgets:

* ``paper()`` — the exact published dimensions.
* ``bench()`` — reduced dims for the benchmark harness (~minutes).
* ``small()`` — tiny dims for unit tests (~seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["JointModelConfig", "TrainingConfig"]


@dataclass(frozen=True)
class JointModelConfig:
    """Architecture hyper-parameters shared by both towers.

    Attributes:
        embedding_dim: length of lookup-table vectors (paper: 64).
        module_dim: output length of each extraction module (paper: 64).
        text_windows: convolution window sizes for text modules
            (paper: 1, 3, 5).
        hidden_dim: width of the per-tower hidden layer (paper: 256).
        representation_dim: width of the representation layer
            (paper: 128).
        margin: θ_r in the Equation-1 loss (paper: 0).
        seed: seed for weight initialization.
        dtype: ``"float64"`` (default, finite-difference checkable) or
            ``"float32"`` (≈2× faster training on BLAS-bound CPUs).
        embedding_init_scale: uniform init range of lookup tables
            (0.1 trains reliably; large values saturate the tanh
            layers at init — see the init-scale ablation bench).
    """

    embedding_dim: int = 64
    module_dim: int = 64
    text_windows: tuple[int, ...] = (1, 3, 5)
    hidden_dim: int = 256
    representation_dim: int = 128
    margin: float = 0.0
    seed: int = 0
    dtype: str = "float64"
    embedding_init_scale: float = 0.1

    def __post_init__(self):
        if self.embedding_dim < 1 or self.module_dim < 1:
            raise ValueError("dimensions must be positive")
        if not self.text_windows:
            raise ValueError("at least one text window is required")
        if any(window < 1 for window in self.text_windows):
            raise ValueError(f"windows must be >= 1, got {self.text_windows}")
        if not -1.0 <= self.margin <= 1.0:
            raise ValueError(f"margin must be a cosine value, got {self.margin}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be float32 or float64, got {self.dtype}")

    @property
    def user_feature_dim(self) -> int:
        """Concatenated user feature width: text modules + categorical."""
        return self.module_dim * (len(self.text_windows) + 1)

    @property
    def event_feature_dim(self) -> int:
        """Concatenated event feature width: text modules only."""
        return self.module_dim * len(self.text_windows)

    @classmethod
    def paper(cls, seed: int = 0) -> "JointModelConfig":
        """The exact architecture of the paper (64/64/256/128)."""
        return cls(seed=seed)

    @classmethod
    def bench(cls, seed: int = 0) -> "JointModelConfig":
        """Reduced dims for the benchmark harness."""
        return cls(
            embedding_dim=24,
            module_dim=24,
            hidden_dim=64,
            representation_dim=32,
            seed=seed,
            dtype="float32",
        )

    @classmethod
    def small(cls, seed: int = 0) -> "JointModelConfig":
        """Tiny dims for fast unit tests."""
        return cls(
            embedding_dim=8,
            module_dim=8,
            text_windows=(1, 3),
            hidden_dim=12,
            representation_dim=6,
            seed=seed,
        )

    def with_windows(self, windows: tuple[int, ...]) -> "JointModelConfig":
        """Copy with a different text-window set (ablation helper)."""
        return replace(self, text_windows=windows)


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters for representation training.

    Attributes:
        epochs: maximum epochs (paper: < 20 with early stopping).
        batch_size: minibatch size.
        learning_rate: initial step size.
        lr_decay: per-epoch multiplicative decay (paper: 0.9).
        patience: early-stopping patience in epochs without validation
            improvement.
        optimizer: ``"sgd"`` or ``"adagrad"``.
        momentum: momentum for SGD.
        validation_fraction: trailing fraction of training pairs held
            out for early stopping.
        seed: seed for shuffling.
        shuffle: whether to reshuffle pairs each epoch.
    """

    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 0.015
    lr_decay: float = 0.9
    patience: int = 4
    optimizer: str = "adagrad"
    momentum: float = 0.0
    validation_fraction: float = 0.1
    seed: int = 0
    shuffle: bool = True
    log_every: int | None = None

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.optimizer not in ("sgd", "adagrad"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")

    @classmethod
    def fast(cls, seed: int = 0) -> "TrainingConfig":
        """A few quick epochs, for tests."""
        return cls(epochs=3, batch_size=32, patience=2, seed=seed)
