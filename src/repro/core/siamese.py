"""Siamese event-network initialization (Section 3.2.1, last paragraph).

"We take the event sub-net ... and construct a Siamese Network.  We
then sample a large number of events and feed the title and body text
into the network as positive training instances.  We also randomly
pair title and body text from different events and use these as
negative training instances."

The resulting tower is (a) an event-only semantic model usable for
"related events" retrieval without any user feedback, and (b) an
initializer: its lookup table (and optionally conv weights) can be
transferred into the event side of a :class:`JointUserEventModel`
before supervised training.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import JointModelConfig, TrainingConfig
from repro.core.model import JointUserEventModel
from repro.core.tower import EventTower
from repro.entities import Event
from repro.nn.batching import pad_batch
from repro.nn.cosine import cosine_similarity, cosine_similarity_backward
from repro.nn.losses import contrastive_loss
from repro.nn.optim import Adagrad, ExponentialDecay
from repro.nn.params import ParamStore
from repro.text.documents import DocumentEncoder, EncodedEvent

__all__ = ["SiameseHistory", "SiameseEventInitializer"]


@dataclass
class SiameseHistory:
    """Per-epoch training losses of the Siamese initializer."""

    losses: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.losses)


class SiameseEventInitializer:
    """Self-supervised event tower trained on (title, body) pairing."""

    def __init__(self, config: JointModelConfig, encoder: DocumentEncoder):
        self.config = config
        self.encoder = encoder
        self.store = ParamStore(dtype=config.dtype)
        rng = np.random.default_rng(config.seed + 7919)
        self.tower = EventTower(
            self.store,
            config,
            text_vocab_size=encoder.event_text_vocab.size,
            rng=rng,
            name="siamese",
        )
        self._min_length = max(config.text_windows)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def build_pairs(
        self, events: Sequence[Event], rng: np.random.Generator
    ) -> tuple[list[EncodedEvent], list[EncodedEvent], np.ndarray]:
        """Positive (title, own body) and negative (title, other body)
        pairs, one of each per event, shuffled together."""
        titles = [self.encoder.encode_event_text(event.title) for event in events]
        bodies = [
            self.encoder.encode_event_text(
                f"{event.description} {event.category}"
            )
            for event in events
        ]
        left: list[EncodedEvent] = []
        right: list[EncodedEvent] = []
        labels: list[int] = []
        num_events = len(events)
        for index in range(num_events):
            left.append(titles[index])
            right.append(bodies[index])
            labels.append(1)
            other = int(rng.integers(num_events - 1))
            if other >= index:
                other += 1
            left.append(titles[index])
            right.append(bodies[other])
            labels.append(0)
        order = rng.permutation(len(labels))
        left = [left[i] for i in order]
        right = [right[i] for i in order]
        label_array = np.asarray(labels, dtype=np.float64)[order]
        return left, right, label_array

    def _forward(
        self, left: Sequence[EncodedEvent], right: Sequence[EncodedEvent]
    ) -> tuple[np.ndarray, dict]:
        left_batch = {
            EventTower.TEXT_SOURCE: pad_batch(
                [item.text_ids for item in left], min_length=self._min_length
            )
        }
        right_batch = {
            EventTower.TEXT_SOURCE: pad_batch(
                [item.text_ids for item in right], min_length=self._min_length
            )
        }
        left_rep, left_cache = self.tower.forward(left_batch)
        right_rep, right_cache = self.tower.forward(right_batch)
        sim, cos_cache = cosine_similarity(left_rep, right_rep)
        return sim, {"left": left_cache, "right": right_cache, "cos": cos_cache}

    def fit(
        self,
        events: Sequence[Event],
        training: TrainingConfig | None = None,
    ) -> SiameseHistory:
        """Train the tower on title/body (mis)pairings."""
        if len(events) < 2:
            raise ValueError("need at least two events to build negative pairs")
        training = training or TrainingConfig(epochs=5, patience=5)
        rng = np.random.default_rng(training.seed + 104729)
        optimizer = Adagrad(self.store, learning_rate=training.learning_rate)
        schedule = ExponentialDecay(training.learning_rate, training.lr_decay)
        history = SiameseHistory()
        for epoch in range(training.epochs):
            schedule.apply(optimizer, epoch)
            left, right, labels = self.build_pairs(events, rng)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, len(labels), training.batch_size):
                stop = start + training.batch_size
                optimizer.zero_grad()
                sim, cache = self._forward(left[start:stop], right[start:stop])
                loss, grad_sim = contrastive_loss(
                    sim, labels[start:stop], margin=self.config.margin
                )
                grad_left, grad_right = cosine_similarity_backward(
                    grad_sim, cache["cos"]
                )
                self.tower.backward(grad_left, cache["left"])
                self.tower.backward(grad_right, cache["right"])
                optimizer.step()
                epoch_loss += loss
                num_batches += 1
            history.losses.append(epoch_loss / max(num_batches, 1))
        return history

    # ------------------------------------------------------------------
    # usage
    # ------------------------------------------------------------------

    def encode_texts(self, texts: Sequence[str], batch_size: int = 256) -> np.ndarray:
        """Event-only semantic embeddings for raw texts."""
        encoded = [self.encoder.encode_event_text(text) for text in texts]
        chunks = []
        for start in range(0, len(encoded), batch_size):
            batch = {
                EventTower.TEXT_SOURCE: pad_batch(
                    [
                        item.text_ids
                        for item in encoded[start : start + batch_size]
                    ],
                    min_length=self._min_length,
                )
            }
            rep, _ = self.tower.forward(batch)
            chunks.append(rep)
        return np.concatenate(chunks, axis=0)

    def transfer_to(
        self, model: JointUserEventModel, include_conv: bool = True
    ) -> list[str]:
        """Copy learned weights into *model*'s event tower.

        Always transfers the event lookup table; with ``include_conv``
        also the convolution weights of matching window sizes.  Returns
        the list of destination parameter names that were overwritten.
        """
        if model.encoder.event_text_vocab.size != self.encoder.event_text_vocab.size:
            raise ValueError("event vocabularies differ; cannot transfer")
        transferred = []
        model.event_tower.text_embedding.table.value[...] = (
            self.tower.text_embedding.table.value
        )
        transferred.append(model.event_tower.text_embedding.table.name)
        if include_conv:
            for source, target in zip(
                self.tower.text_modules, model.event_tower.text_modules
            ):
                if source.window != target.window:
                    raise ValueError(
                        f"window mismatch: {source.window} vs {target.window}"
                    )
                target.conv.weight.value[...] = source.conv.weight.value
                target.conv.bias.value[...] = source.conv.bias.value
                transferred.extend(
                    [target.conv.weight.name, target.conv.bias.name]
                )
        return transferred
