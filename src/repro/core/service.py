"""Serving-path facade: cached encoding + indexed scoring + ranking.

Section 4 of the paper describes the production serving design:
representation vectors are pre-computed once per entity, cached, and
only recomputed "upon creation and important information change".
:class:`RepresentationService` implements that path on top of a
trained :class:`~repro.core.model.JointUserEventModel`, a
:class:`~repro.store.VectorCache`, and an
:class:`~repro.store.EventIndex`, and exposes the recommendation
primitive — rank the *currently active* events for a user.

Two serving modes share one contract:

* ``"indexed"`` (default) — the user vector is scored against the
  index's contiguous event matrix with a single matrix-vector product
  and top-K is selected with ``np.argpartition``; candidate events
  not yet indexed are batch-encoded and upserted on first sight.
  Following the paper's mutation-driven invalidation model, the
  indexed path trusts rows keyed by ``event_id``: content changes
  must be announced via :meth:`refresh_events` (or scored with
  ``verify_versions=True``, which fingerprints every candidate).
* ``"loop"`` — the original per-event Python loop, kept as the
  brute-force parity oracle.  Both paths score with the training-time
  cosine (:func:`repro.nn.cosine.pair_cosine`) and order by
  ``(-score, event_id)``, so they agree to float precision including
  tie-breaks.

:meth:`rank_events_batch` ranks many users in one GEMM against the
same index — the multi-user serving primitive large-scale two-tower
systems are built around.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import JointUserEventModel
from repro.entities import Event, User
from repro.nn.cosine import pair_cosine
from repro.obs.drift import DriftMonitor
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.store.cache import VectorCache
from repro.store.index import EventIndex, top_k_order

__all__ = [
    "ScoredEvent",
    "ServingMonitors",
    "RepresentationService",
    "validate_top_k",
]

# Candidate-pool sizes are counts, not latencies: linear-ish buckets.
_CANDIDATE_BUCKETS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 10000)

# Batch sizes (user counts) for rank_events_batch.
_BATCH_USER_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

_SERVING_MODES = ("indexed", "loop")


@dataclass(frozen=True)
class ScoredEvent:
    """One ranked recommendation candidate."""

    event: Event
    score: float


def _fingerprint(payload: dict) -> str:
    """Stable content hash used as the cache/index version tag."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def validate_top_k(top_k: int | None) -> int | None:
    """``top_k`` must be a positive integer (or None = full ranking).

    A negative value would silently slice from the wrong end
    (``scored[:-2]`` semantics); zero silently returns nothing.  Both
    are caller bugs — fail loudly.  Public so API boundaries (the
    serving HTTP layer, the CLI) apply exactly the ranking paths'
    validation instead of re-deriving it.
    """
    if top_k is None:
        return None
    try:
        top_k = int(top_k.__index__())
    except AttributeError:
        raise ValueError(
            f"top_k must be an integer >= 1 or None, got {top_k!r}"
        ) from None
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1 or None, got {top_k}")
    return top_k


class ServingMonitors:
    """Drift monitors over the serving-path model-output distributions.

    Three signals the latency telemetry cannot see:

    * ``serving_scores`` — the scores actually returned to callers
      (top-K of every ranking plus single-pair ``score`` calls).  A
      shift here means the model's notion of a good match moved — the
      first symptom of index staleness or a bad model swap.
    * ``serving_candidates`` — per-request candidate-pool size after
      activity filtering; events expiring en masse shrink it long
      before latency notices.
    * ``serving_user_norms`` — L2 norms of served user vectors; a
      shifted norm distribution is the classic symptom of an
      embedding-space drift after incremental retraining.

    Observation is an O(1) append, gated on ``registry.enabled`` by
    the service; verdicts are computed (and exported as
    ``repro_drift_*`` gauges) only at snapshot time via the service's
    pull collector.
    """

    def __init__(
        self,
        scores: DriftMonitor | None = None,
        candidates: DriftMonitor | None = None,
        user_norms: DriftMonitor | None = None,
    ) -> None:
        self.scores = scores if scores is not None else DriftMonitor(
            "serving_scores", warmup=256, window=256
        )
        self.candidates = candidates if candidates is not None else DriftMonitor(
            "serving_candidates", warmup=64, window=64, bins=5, min_live=16
        )
        self.user_norms = user_norms if user_norms is not None else DriftMonitor(
            "serving_user_norms", warmup=128, window=128
        )

    @property
    def all(self) -> tuple[DriftMonitor, ...]:
        return (self.scores, self.candidates, self.user_norms)

    def rebaseline(self) -> None:
        """After an intentional change (model swap, pool rebuild)."""
        for monitor in self.all:
            monitor.rebaseline()

    def collect(self, registry: MetricsRegistry) -> None:
        """Pull-style export of every monitor's current verdict."""
        for monitor in self.all:
            monitor.export(registry)


class RepresentationService:
    """Cached user/event encoding and indexed cosine ranking."""

    USER_KIND = "user"
    EVENT_KIND = "event"

    def __init__(
        self,
        model: JointUserEventModel,
        cache: VectorCache | None = None,
        registry: MetricsRegistry | None = None,
        index: EventIndex | None = None,
        serving: str = "indexed",
        monitors: ServingMonitors | None = None,
    ):
        if serving not in _SERVING_MODES:
            raise ValueError(
                f"serving must be one of {_SERVING_MODES}, got {serving!r}"
            )
        self.model = model
        self.cache = cache if cache is not None else VectorCache()
        self.index = index if index is not None else EventIndex()
        self.serving = serving
        self.monitors = monitors if monitors is not None else ServingMonitors()
        self._index_rebuilds = 0
        # None → resolve the global registry at call time, so telemetry
        # enabled after construction is still picked up.
        self._registry = registry
        # Stable bound-method objects: register_collector short-circuits
        # on identity, so per-request re-registration stays lock-free.
        self._cache_collector = self._collect_cache_metrics
        self._index_collector = self._collect_index_metrics
        self._drift_collector = self.monitors.collect

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _obs(self) -> MetricsRegistry:
        registry = self._registry if self._registry is not None else get_registry()
        if registry.enabled:
            registry.register_collector(
                f"repro_cache:{id(self.cache)}", self._cache_collector
            )
            registry.register_collector(
                f"repro_index:{id(self.index)}", self._index_collector
            )
            registry.register_collector(
                f"repro_drift:{id(self.monitors)}", self._drift_collector
            )
        return registry

    def _collect_cache_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-style export of the cache's own stats at snapshot time."""
        stats = self.cache.stats
        registry.counter("repro_cache_hits_total").set_total(stats.hits)
        registry.counter("repro_cache_misses_total").set_total(stats.misses)
        registry.counter("repro_cache_stale_hits_total").set_total(stats.stale_hits)
        registry.counter("repro_cache_invalidations_total").set_total(
            stats.invalidations
        )
        registry.counter("repro_cache_evictions_total").set_total(stats.evictions)
        registry.gauge("repro_cache_hit_rate").set(stats.hit_rate)
        registry.gauge("repro_cache_size").set(len(self.cache))

    def _collect_index_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-style export of the event index's maintenance stats."""
        stats = self.index.stats
        registry.gauge("repro_serving_index_size").set(len(self.index))
        registry.gauge("repro_serving_index_capacity").set(self.index.capacity)
        registry.counter("repro_serving_index_inserts_total").set_total(stats.inserts)
        registry.counter("repro_serving_index_refreshes_total").set_total(
            stats.refreshes
        )
        registry.counter("repro_serving_index_fresh_skips_total").set_total(
            stats.fresh_skips
        )
        registry.counter("repro_serving_index_removes_total").set_total(stats.removes)
        registry.counter("repro_serving_index_compactions_total").set_total(
            stats.compactions
        )
        registry.counter("repro_serving_index_grows_total").set_total(stats.grows)
        registry.counter("repro_serving_index_rebuilds_total").set_total(
            self._index_rebuilds
        )

    # ------------------------------------------------------------------
    # vectors
    # ------------------------------------------------------------------

    def user_version(self, user: User) -> str:
        """Version tag covering every model-visible user attribute."""
        return _fingerprint(user.to_dict())

    def event_version(self, event: Event) -> str:
        """Version tag covering the event's model-visible text."""
        return _fingerprint(
            {
                "title": event.title,
                "description": event.description,
                "category": event.category,
            }
        )

    def _observe_user_norm(self, vector: np.ndarray) -> None:
        """Feed the served user-vector norm to the drift monitor."""
        registry = self._registry if self._registry is not None else get_registry()
        if registry.enabled:
            self.monitors.user_norms.observe(float(np.sqrt(vector @ vector)))

    def user_vector(self, user: User) -> np.ndarray:
        """v_u, from cache when current, recomputed otherwise."""
        version = self.user_version(user)
        cached = self.cache.get(self.USER_KIND, user.user_id, version)
        if cached is not None:
            self._observe_user_norm(cached)
            return cached
        registry = self._obs()
        with span(
            "repro_serving_encode",
            tags={"kind": self.USER_KIND},
            registry=registry,
        ):
            encoded = self.model.encoder.encode_user(user)
            vector = self.model.encode_users([encoded])[0]
        self.cache.put(self.USER_KIND, user.user_id, version, vector)
        self._observe_user_norm(vector)
        return vector

    def event_vector(self, event: Event) -> np.ndarray:
        """v_e, from cache when current, recomputed otherwise."""
        version = self.event_version(event)
        cached = self.cache.get(self.EVENT_KIND, event.event_id, version)
        if cached is not None:
            return cached
        registry = self._obs()
        with span(
            "repro_serving_encode",
            tags={"kind": self.EVENT_KIND},
            registry=registry,
        ):
            encoded = self.model.encoder.encode_event(event)
            vector = self.model.encode_events([encoded])[0]
        self.cache.put(self.EVENT_KIND, event.event_id, version, vector)
        return vector

    def warm(self, users: Sequence[User], events: Sequence[Event]) -> None:
        """Batch-precompute vectors for a cohort (the production
        "computed upon creation" path).  Warmed events are also
        upserted into the retrieval index."""
        registry = self._obs()
        with span("repro_serving_warm", registry=registry):
            self._warm(users, events)
        if registry.enabled:
            registry.counter("repro_serving_warmed_total", tags={"kind": "user"}).inc(
                len(users)
            )
            registry.counter("repro_serving_warmed_total", tags={"kind": "event"}).inc(
                len(events)
            )

    def _warm(self, users: Sequence[User], events: Sequence[Event]) -> None:
        # Entries whose (id, version) is already cached are counted as
        # hits and skipped — re-encoding them would only burn tower
        # inference and churn the LRU order of the live working set.
        # Duplicate (id, version) pairs *within* the cohort are encoded
        # once: a warm cohort assembled from concurrent requests can
        # legitimately name the same cold entity several times.
        pending_users: list[tuple[User, str]] = []
        seen_users: set[tuple[int, str]] = set()
        for user in users:
            version = self.user_version(user)
            if (user.user_id, version) in seen_users:
                continue
            if self.cache.peek(self.USER_KIND, user.user_id, version) is None:
                seen_users.add((user.user_id, version))
                pending_users.append((user, version))
        if pending_users:
            encoded = [
                self.model.encoder.encode_user(user) for user, _ in pending_users
            ]
            vectors = self.model.encode_users(encoded)
            for (user, version), vector in zip(pending_users, vectors):
                self.cache.put(self.USER_KIND, user.user_id, version, vector)

        pending_events: list[tuple[Event, str]] = []
        seen_events: set[tuple[int, str]] = set()
        for event in events:
            version = self.event_version(event)
            if (event.event_id, version) in seen_events:
                continue
            vector = self.cache.peek(self.EVENT_KIND, event.event_id, version)
            if vector is None:
                seen_events.add((event.event_id, version))
                pending_events.append((event, version))
            else:
                self.index.upsert(event, version, vector)
        if pending_events:
            encoded = [
                self.model.encoder.encode_event(event)
                for event, _ in pending_events
            ]
            vectors = self.model.encode_events(encoded)
            for (event, version), vector in zip(pending_events, vectors):
                self.cache.put(self.EVENT_KIND, event.event_id, version, vector)
                self.index.upsert(event, version, vector)

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------

    def refresh_events(self, events: Sequence[Event]) -> int:
        """Ensure the index holds a current vector for each event.

        This is the "important information change" hook: versions are
        fingerprinted, stale or missing rows are re-encoded (cache
        first, batched tower inference for the rest) and upserted.
        Returns the number of rows that needed new vectors.
        """
        pending: list[tuple[Event, str]] = []
        for event in events:
            version = self.event_version(event)
            if self.index.version(event.event_id) == version:
                self.index.upsert(event, version)  # refresh activity window
            else:
                pending.append((event, version))
        self._insert_events(pending)
        return len(pending)

    def remove_event(self, event_id: int) -> bool:
        """Drop an event from the index and cache (e.g. on deletion)."""
        removed = self.index.remove(event_id)
        self.cache.invalidate(self.EVENT_KIND, event_id)
        return removed

    def rebuild_index(self, events: Sequence[Event] | None = None) -> None:
        """Clear and repopulate the index.

        For model swaps or suspected corruption.  With ``events=None``
        the current rows are re-inserted.  Note the vectors come back
        through the cache: a caller swapping the *model* should
        ``cache.clear()`` first so every row is re-encoded.
        """
        if events is None:
            events = self.index.events
        self.index.clear()
        self._index_rebuilds += 1
        self.refresh_events(events)

    def _insert_events(self, pending: Sequence[tuple[Event, str]]) -> None:
        """Upsert (event, version) pairs, batch-encoding cache misses."""
        if not pending:
            return
        need_encode: list[tuple[Event, str]] = []
        seen: set[tuple[int, str]] = set()
        for event, version in pending:
            if (event.event_id, version) in seen:
                continue
            cached = self.cache.get(self.EVENT_KIND, event.event_id, version)
            if cached is not None:
                self.index.upsert(event, version, cached)
            else:
                seen.add((event.event_id, version))
                need_encode.append((event, version))
        if not need_encode:
            return
        registry = self._obs()
        with span(
            "repro_serving_encode",
            tags={"kind": self.EVENT_KIND},
            registry=registry,
        ):
            encoded = [
                self.model.encoder.encode_event(event) for event, _ in need_encode
            ]
            vectors = self.model.encode_events(encoded)
        for (event, version), vector in zip(need_encode, vectors):
            self.cache.put(self.EVENT_KIND, event.event_id, version, vector)
            self.index.upsert(event, version, vector)

    def _ensure_indexed(
        self, events: Sequence[Event], verify_versions: bool
    ) -> None:
        """Make every candidate scoreable before the matrix product."""
        with span("repro_serving_ensure_indexed", registry=self._obs()):
            if verify_versions:
                self.refresh_events(events)
                return
            missing = [
                event for event in events if event.event_id not in self.index
            ]
            if missing:
                self.refresh_events(missing)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score(self, user: User, event: Event) -> float:
        """s_θ(u, e): cosine of the cached representation vectors.

        Routed through :func:`repro.nn.cosine.pair_cosine` so the
        served score is bit-identical to
        :meth:`JointUserEventModel.similarity` on the same pair.
        """
        registry = self._registry if self._registry is not None else get_registry()
        with span("repro_serving_score", registry=registry):
            value = pair_cosine(self.user_vector(user), self.event_vector(event))
        if registry.enabled:
            self.monitors.scores.observe(value)
        return value

    def rank_events(
        self,
        user: User,
        events: Sequence[Event],
        at_time: float | None = None,
        top_k: int | None = None,
        serving: str | None = None,
        verify_versions: bool = False,
    ) -> list[ScoredEvent]:
        """Rank candidate events for a user by representation score.

        Args:
            user: the user to recommend for.
            events: candidate pool.
            at_time: if given, events not active at this time are
                excluded (expired events "are no longer eligible for
                any further consideration", Section 1).
            top_k: truncate the ranking; must be >= 1 (or None).
            serving: override the service-level mode for this call
                (``"indexed"`` or ``"loop"``).
            verify_versions: indexed mode only — fingerprint every
                candidate and refresh stale rows before scoring,
                instead of trusting indexed ``event_id`` rows.
        """
        top_k = validate_top_k(top_k)
        mode = self.serving if serving is None else serving
        if mode not in _SERVING_MODES:
            raise ValueError(
                f"serving must be one of {_SERVING_MODES}, got {mode!r}"
            )
        registry = self._obs()
        with span("repro_serving_rank", registry=registry):
            if mode == "loop":
                scored, num_candidates = self._rank_events_loop(
                    user, events, at_time, top_k
                )
            else:
                scored, num_candidates = self._rank_events_indexed(
                    user, events, at_time, top_k, verify_versions
                )
        if registry.enabled:
            registry.counter("repro_serving_rank_total").inc()
            registry.counter(
                "repro_serving_rank_mode_total", tags={"serving": mode}
            ).inc()
            registry.histogram(
                "repro_serving_candidates", buckets=_CANDIDATE_BUCKETS
            ).observe(num_candidates)
            self.monitors.candidates.observe(float(num_candidates))
            scores_monitor = self.monitors.scores
            for item in scored:
                scores_monitor.observe(item.score)
        return scored

    def _rank_events_loop(
        self,
        user: User,
        events: Sequence[Event],
        at_time: float | None,
        top_k: int | None,
    ) -> tuple[list[ScoredEvent], int]:
        """Per-event scoring loop: the brute-force parity oracle."""
        candidates = [
            event
            for event in events
            if at_time is None or event.is_active(at_time)
        ]
        scored = [
            ScoredEvent(event=event, score=self.score(user, event))
            for event in candidates
        ]
        scored.sort(key=lambda item: (-item.score, item.event.event_id))
        if top_k is not None:
            scored = scored[:top_k]
        return scored, len(candidates)

    def _rank_events_indexed(
        self,
        user: User,
        events: Sequence[Event],
        at_time: float | None,
        top_k: int | None,
        verify_versions: bool,
    ) -> tuple[list[ScoredEvent], int]:
        """One matrix-vector product + argpartition top-K.

        Row resolution, activity filtering and the GEMV run atomically
        inside :meth:`EventIndex.score_ids` — under concurrent index
        mutation, rows resolved separately could move (swap-with-last
        compaction) before the product ran.
        """
        self._ensure_indexed(events, verify_versions)
        if not events:
            return [], 0
        ids = np.fromiter(
            (event.event_id for event in events),
            dtype=np.int64,
            count=len(events),
        )
        positions, scores = self.index.score_ids(
            self.user_vector(user), ids, at_time
        )
        if positions.size == 0:
            return [], 0
        with span("repro_serving_topk", registry=self._obs()):
            order = top_k_order(scores, ids[positions], top_k)
            scored = [
                ScoredEvent(event=events[positions[i]], score=float(scores[i]))
                for i in order
            ]
        return scored, int(positions.size)

    def rank_events_batch(
        self,
        users: Sequence[User],
        events: Sequence[Event],
        at_time: float | None = None,
        top_k: int | None = None,
        verify_versions: bool = False,
        observe_scores: bool = True,
    ) -> list[list[ScoredEvent]]:
        """Rank the same candidate pool for many users in one GEMM.

        The user vectors (cache-aware, misses batch-encoded) form a
        ``(num_users, dim)`` matrix scored against the index in a
        single matrix-matrix product; each row then goes through the
        same ``argpartition`` + ``(-score, event_id)`` selection as
        :meth:`rank_events`.  Returns one ranking per user, in input
        order.

        ``observe_scores=False`` skips feeding the returned scores to
        the score drift monitor.  The serving micro-batcher ranks the
        *union* of its requests' pools untruncated and slices each
        response out afterwards; it must observe only the scores it
        actually serves, or the drift baseline (built from served
        top-K scores) would be compared against full-pool score
        distributions and flag spurious drift.
        """
        top_k = validate_top_k(top_k)
        registry = self._obs()
        with span("repro_serving_rank_batch", registry=registry):
            results = self._rank_events_batch(
                users, events, at_time, top_k, verify_versions
            )
        if registry.enabled:
            registry.counter("repro_serving_rank_batch_total").inc()
            registry.counter("repro_serving_rank_total").inc(len(users))
            registry.histogram(
                "repro_serving_rank_batch_users", buckets=_BATCH_USER_BUCKETS
            ).observe(len(users))
            registry.histogram(
                "repro_serving_candidates", buckets=_CANDIDATE_BUCKETS
            ).observe(len(events))
            self.monitors.candidates.observe(float(len(events)))
            if observe_scores:
                scores_monitor = self.monitors.scores
                for ranking in results:
                    for item in ranking:
                        scores_monitor.observe(item.score)
        return results

    def _rank_events_batch(
        self,
        users: Sequence[User],
        events: Sequence[Event],
        at_time: float | None,
        top_k: int | None,
        verify_versions: bool,
    ) -> list[list[ScoredEvent]]:
        if not users:
            return []
        self._ensure_indexed(events, verify_versions)
        if not events:
            return [[] for _ in users]
        ids = np.fromiter(
            (event.event_id for event in events),
            dtype=np.int64,
            count=len(events),
        )
        queries = self._user_matrix(users)
        # Atomic compound read: see _rank_events_indexed.
        positions, score_matrix = self.index.score_ids_batch(
            queries, ids, at_time
        )
        if positions.size == 0:
            return [[] for _ in users]
        selected_ids = ids[positions]
        results: list[list[ScoredEvent]] = []
        with span("repro_serving_topk", registry=self._obs()):
            for scores in score_matrix:
                order = top_k_order(scores, selected_ids, top_k)
                results.append(
                    [
                        ScoredEvent(
                            event=events[positions[i]], score=float(scores[i])
                        )
                        for i in order
                    ]
                )
        return results

    def _user_matrix(self, users: Sequence[User]) -> np.ndarray:
        """Stack v_u for a user cohort, batch-encoding cache misses.

        A cohort coalesced from concurrent requests can contain the
        same user several times; each distinct ``(user_id, version)``
        is looked up — and, on a miss, encoded — exactly once, so two
        coalesced requests for one cold user cost one tower inference
        and one counted cache miss, not two.
        """
        vectors: list[np.ndarray | None] = [None] * len(users)
        pending: list[tuple[int, User, str]] = []
        owner: dict[tuple[int, str], int] = {}
        duplicates: list[tuple[int, tuple[int, str]]] = []
        for i, user in enumerate(users):
            version = self.user_version(user)
            key = (user.user_id, version)
            if key in owner:
                duplicates.append((i, key))
                continue
            owner[key] = i
            cached = self.cache.get(self.USER_KIND, user.user_id, version)
            if cached is not None:
                vectors[i] = cached
            else:
                pending.append((i, user, version))
        if pending:
            registry = self._obs()
            with span(
                "repro_serving_encode",
                tags={"kind": self.USER_KIND},
                registry=registry,
            ):
                encoded = [
                    self.model.encoder.encode_user(user) for _, user, _ in pending
                ]
                batch = self.model.encode_users(encoded)
            for (i, user, version), vector in zip(pending, batch):
                self.cache.put(self.USER_KIND, user.user_id, version, vector)
                vectors[i] = vector
        for i, key in duplicates:
            vectors[i] = vectors[owner[key]]
        return np.vstack(vectors)
