"""Serving-path facade: cached encoding + scoring + ranking.

Section 4 of the paper describes the production serving design:
representation vectors are pre-computed once per entity, cached, and
only recomputed "upon creation and important information change".
:class:`RepresentationService` implements that path on top of a
trained :class:`~repro.core.model.JointUserEventModel` and a
:class:`~repro.store.VectorCache`, and exposes the recommendation
primitive — rank the *currently active* events for a user.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import JointUserEventModel
from repro.entities import Event, User
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.store.cache import VectorCache

__all__ = ["ScoredEvent", "RepresentationService"]

_EPS = 1.0e-12

# Candidate-pool sizes are counts, not latencies: linear-ish buckets.
_CANDIDATE_BUCKETS = (1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 10000)


@dataclass(frozen=True)
class ScoredEvent:
    """One ranked recommendation candidate."""

    event: Event
    score: float


def _fingerprint(payload: dict) -> str:
    """Stable content hash used as the cache version tag."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


class RepresentationService:
    """Cached user/event encoding and cosine scoring."""

    USER_KIND = "user"
    EVENT_KIND = "event"

    def __init__(
        self,
        model: JointUserEventModel,
        cache: VectorCache | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.model = model
        self.cache = cache if cache is not None else VectorCache()
        # None → resolve the global registry at call time, so telemetry
        # enabled after construction is still picked up.
        self._registry = registry

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def _obs(self) -> MetricsRegistry:
        registry = self._registry if self._registry is not None else get_registry()
        if registry.enabled:
            registry.register_collector(
                f"repro_cache:{id(self.cache)}", self._collect_cache_metrics
            )
        return registry

    def _collect_cache_metrics(self, registry: MetricsRegistry) -> None:
        """Pull-style export of the cache's own stats at snapshot time."""
        stats = self.cache.stats
        registry.counter("repro_cache_hits_total").set_total(stats.hits)
        registry.counter("repro_cache_misses_total").set_total(stats.misses)
        registry.counter("repro_cache_stale_hits_total").set_total(stats.stale_hits)
        registry.counter("repro_cache_invalidations_total").set_total(
            stats.invalidations
        )
        registry.counter("repro_cache_evictions_total").set_total(stats.evictions)
        registry.gauge("repro_cache_hit_rate").set(stats.hit_rate)
        registry.gauge("repro_cache_size").set(len(self.cache))

    # ------------------------------------------------------------------
    # vectors
    # ------------------------------------------------------------------

    def user_version(self, user: User) -> str:
        """Version tag covering every model-visible user attribute."""
        return _fingerprint(user.to_dict())

    def event_version(self, event: Event) -> str:
        """Version tag covering the event's model-visible text."""
        return _fingerprint(
            {
                "title": event.title,
                "description": event.description,
                "category": event.category,
            }
        )

    def user_vector(self, user: User) -> np.ndarray:
        """v_u, from cache when current, recomputed otherwise."""
        version = self.user_version(user)
        cached = self.cache.get(self.USER_KIND, user.user_id, version)
        if cached is not None:
            return cached
        registry = self._obs()
        start = time.perf_counter() if registry.enabled else 0.0
        encoded = self.model.encoder.encode_user(user)
        vector = self.model.encode_users([encoded])[0]
        if registry.enabled:
            registry.histogram(
                "repro_serving_encode_seconds", tags={"kind": self.USER_KIND}
            ).observe(time.perf_counter() - start)
        self.cache.put(self.USER_KIND, user.user_id, version, vector)
        return vector

    def event_vector(self, event: Event) -> np.ndarray:
        """v_e, from cache when current, recomputed otherwise."""
        version = self.event_version(event)
        cached = self.cache.get(self.EVENT_KIND, event.event_id, version)
        if cached is not None:
            return cached
        registry = self._obs()
        start = time.perf_counter() if registry.enabled else 0.0
        encoded = self.model.encoder.encode_event(event)
        vector = self.model.encode_events([encoded])[0]
        if registry.enabled:
            registry.histogram(
                "repro_serving_encode_seconds", tags={"kind": self.EVENT_KIND}
            ).observe(time.perf_counter() - start)
        self.cache.put(self.EVENT_KIND, event.event_id, version, vector)
        return vector

    def warm(self, users: Sequence[User], events: Sequence[Event]) -> None:
        """Batch-precompute vectors for a cohort (the production
        "computed upon creation" path)."""
        registry = self._obs()
        with span("repro_serving_warm", registry=registry):
            self._warm(users, events)
        if registry.enabled:
            registry.counter("repro_serving_warmed_total", tags={"kind": "user"}).inc(
                len(users)
            )
            registry.counter("repro_serving_warmed_total", tags={"kind": "event"}).inc(
                len(events)
            )

    def _warm(self, users: Sequence[User], events: Sequence[Event]) -> None:
        if users:
            encoded = [self.model.encoder.encode_user(user) for user in users]
            vectors = self.model.encode_users(encoded)
            for user, vector in zip(users, vectors):
                self.cache.put(
                    self.USER_KIND, user.user_id, self.user_version(user), vector
                )
        if events:
            encoded = [self.model.encoder.encode_event(event) for event in events]
            vectors = self.model.encode_events(encoded)
            for event, vector in zip(events, vectors):
                self.cache.put(
                    self.EVENT_KIND,
                    event.event_id,
                    self.event_version(event),
                    vector,
                )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score(self, user: User, event: Event) -> float:
        """s_θ(u, e): cosine of the cached representation vectors."""
        registry = self._registry if self._registry is not None else get_registry()
        start = time.perf_counter() if registry.enabled else 0.0
        user_vec = self.user_vector(user)
        event_vec = self.event_vector(event)
        denom = (
            np.sqrt((user_vec * user_vec).sum())
            * np.sqrt((event_vec * event_vec).sum())
            + _EPS
        )
        result = float(user_vec @ event_vec / denom)
        if registry.enabled:
            registry.histogram("repro_serving_score_seconds").observe(
                time.perf_counter() - start
            )
        return result

    def rank_events(
        self,
        user: User,
        events: Sequence[Event],
        at_time: float | None = None,
        top_k: int | None = None,
    ) -> list[ScoredEvent]:
        """Rank candidate events for a user by representation score.

        Args:
            user: the user to recommend for.
            events: candidate pool.
            at_time: if given, events not active at this time are
                excluded (expired events "are no longer eligible for
                any further consideration", Section 1).
            top_k: truncate the ranking.
        """
        registry = self._obs()
        with span("repro_serving_rank", registry=registry):
            candidates = [
                event
                for event in events
                if at_time is None or event.is_active(at_time)
            ]
            scored = [
                ScoredEvent(event=event, score=self.score(user, event))
                for event in candidates
            ]
            scored.sort(key=lambda item: (-item.score, item.event.event_id))
            if top_k is not None:
                scored = scored[:top_k]
        if registry.enabled:
            registry.counter("repro_serving_rank_total").inc()
            registry.histogram(
                "repro_serving_candidates", buckets=_CANDIDATE_BUCKETS
            ).observe(len(candidates))
        return scored
