"""Serving-path facade: cached encoding + scoring + ranking.

Section 4 of the paper describes the production serving design:
representation vectors are pre-computed once per entity, cached, and
only recomputed "upon creation and important information change".
:class:`RepresentationService` implements that path on top of a
trained :class:`~repro.core.model.JointUserEventModel` and a
:class:`~repro.store.VectorCache`, and exposes the recommendation
primitive — rank the *currently active* events for a user.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import JointUserEventModel
from repro.entities import Event, User
from repro.store.cache import VectorCache

__all__ = ["ScoredEvent", "RepresentationService"]

_EPS = 1.0e-12


@dataclass(frozen=True)
class ScoredEvent:
    """One ranked recommendation candidate."""

    event: Event
    score: float


def _fingerprint(payload: dict) -> str:
    """Stable content hash used as the cache version tag."""
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


class RepresentationService:
    """Cached user/event encoding and cosine scoring."""

    USER_KIND = "user"
    EVENT_KIND = "event"

    def __init__(
        self,
        model: JointUserEventModel,
        cache: VectorCache | None = None,
    ):
        self.model = model
        self.cache = cache if cache is not None else VectorCache()

    # ------------------------------------------------------------------
    # vectors
    # ------------------------------------------------------------------

    def user_version(self, user: User) -> str:
        """Version tag covering every model-visible user attribute."""
        return _fingerprint(user.to_dict())

    def event_version(self, event: Event) -> str:
        """Version tag covering the event's model-visible text."""
        return _fingerprint(
            {
                "title": event.title,
                "description": event.description,
                "category": event.category,
            }
        )

    def user_vector(self, user: User) -> np.ndarray:
        """v_u, from cache when current, recomputed otherwise."""
        version = self.user_version(user)
        cached = self.cache.get(self.USER_KIND, user.user_id, version)
        if cached is not None:
            return cached
        encoded = self.model.encoder.encode_user(user)
        vector = self.model.encode_users([encoded])[0]
        self.cache.put(self.USER_KIND, user.user_id, version, vector)
        return vector

    def event_vector(self, event: Event) -> np.ndarray:
        """v_e, from cache when current, recomputed otherwise."""
        version = self.event_version(event)
        cached = self.cache.get(self.EVENT_KIND, event.event_id, version)
        if cached is not None:
            return cached
        encoded = self.model.encoder.encode_event(event)
        vector = self.model.encode_events([encoded])[0]
        self.cache.put(self.EVENT_KIND, event.event_id, version, vector)
        return vector

    def warm(self, users: Sequence[User], events: Sequence[Event]) -> None:
        """Batch-precompute vectors for a cohort (the production
        "computed upon creation" path)."""
        if users:
            encoded = [self.model.encoder.encode_user(user) for user in users]
            vectors = self.model.encode_users(encoded)
            for user, vector in zip(users, vectors):
                self.cache.put(
                    self.USER_KIND, user.user_id, self.user_version(user), vector
                )
        if events:
            encoded = [self.model.encoder.encode_event(event) for event in events]
            vectors = self.model.encode_events(encoded)
            for event, vector in zip(events, vectors):
                self.cache.put(
                    self.EVENT_KIND,
                    event.event_id,
                    self.event_version(event),
                    vector,
                )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def score(self, user: User, event: Event) -> float:
        """s_θ(u, e): cosine of the cached representation vectors."""
        user_vec = self.user_vector(user)
        event_vec = self.event_vector(event)
        denom = (
            np.sqrt((user_vec * user_vec).sum())
            * np.sqrt((event_vec * event_vec).sum())
            + _EPS
        )
        return float(user_vec @ event_vec / denom)

    def rank_events(
        self,
        user: User,
        events: Sequence[Event],
        at_time: float | None = None,
        top_k: int | None = None,
    ) -> list[ScoredEvent]:
        """Rank candidate events for a user by representation score.

        Args:
            user: the user to recommend for.
            events: candidate pool.
            at_time: if given, events not active at this time are
                excluded (expired events "are no longer eligible for
                any further consideration", Section 1).
            top_k: truncate the ranking.
        """
        candidates = [
            event
            for event in events
            if at_time is None or event.is_active(at_time)
        ]
        scored = [
            ScoredEvent(event=event, score=self.score(user, event))
            for event in candidates
        ]
        scored.sort(key=lambda item: (-item.score, item.event.event_id))
        if top_k is not None:
            scored = scored[:top_k]
        return scored
