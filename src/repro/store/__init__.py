"""Serving-time representation store (TAO stand-in) and retrieval index."""

from repro.store.cache import CacheStats, VectorCache
from repro.store.index import EventIndex, IndexStats, top_k_order

__all__ = ["CacheStats", "EventIndex", "IndexStats", "VectorCache", "top_k_order"]
