"""Serving-time representation store (TAO stand-in)."""

from repro.store.cache import CacheStats, VectorCache

__all__ = ["CacheStats", "VectorCache"]
