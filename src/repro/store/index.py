"""Batched top-K event retrieval index (paper Section 4 at scale).

The production design of Section 4 makes recommendation time be
dominated by similarity lookups over pre-computed vectors.  A Python
loop of per-event cosine calls cannot hold that property past a few
thousand candidates; the standard large-scale answer (two-tower
retrieval à la TransNets / JNET) is a maintained *index*: one
contiguous matrix of event vectors that a user vector is scored
against with a single matrix-vector product.

:class:`EventIndex` is that structure, in-process:

* rows live in one contiguous ``float64`` matrix, L2-normalized at
  insert time, with the residual per-row scale kept so indexed scores
  reproduce :func:`repro.nn.cosine.cosine_similarity` exactly
  (``u·e / ((‖u‖+ε)(‖e‖+ε))``) instead of a subtly different cosine;
* upsert/remove are O(1): a dict maps ``event_id → row``, removal
  compacts by swapping the last row into the hole, and capacity grows
  by amortized doubling so inserts never reallocate per call;
* each entry is keyed by an ``(event_id, version)`` fingerprint —
  upserting an unchanged version is a cheap no-op, a new version
  overwrites the row in place ("recomputed upon important information
  change", Section 4);
* activity windows (``created_at``/``starts_at``) are kept in aligned
  arrays so ``at_time`` eligibility is one vectorized comparison, not
  a per-event ``is_active`` loop.

The index owns no model and no metrics of its own —
:class:`~repro.core.service.RepresentationService` maintains it and
exports :class:`IndexStats` through ``repro.obs``.  The one exception
is *request tracing*: when a :class:`repro.obs.trace.Tracer` is
installed, the scoring entry points emit ``repro_index_lock_wait``
(time spent waiting to acquire ``_lock``) and
``repro_index_gemv``/``repro_index_gemm`` stage spans, so per-request
latency attribution can separate lock contention from kernel time.
With no tracer, the cost is one module-global ``None`` check.

Thread safety: every public method holds ``self._lock`` (an
``RLock`` — scoring methods re-enter through :meth:`score_ids`), so
concurrent mutators and rankers see consistent row/matrix state.  The
row-mapping internals are ``# guarded-by: _lock`` annotated and the
discipline is enforced statically by RPR401/RPR402
(:mod:`repro.analysis.locks`).  The compound serving read —
resolve rows, filter by activity, GEMV/GEMM — must be atomic (a
concurrent swap-with-last ``remove`` moves rows between the steps),
which is what :meth:`score_ids` / :meth:`score_ids_batch` provide.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.entities import Event
from repro.nn.cosine import COSINE_EPS
from repro.obs.spans import span
from repro.obs.trace import active as _trace_active
from repro.obs.trace import record_stage

__all__ = ["IndexStats", "EventIndex", "top_k_order"]

_INITIAL_CAPACITY = 64


@dataclass
class IndexStats:
    """Mutation counters, observable for serving capacity planning.

    ``inserts`` are first-time rows; ``refreshes`` are version-change
    overwrites; ``fresh_skips`` are upserts whose version was already
    current (the warm fast path); ``compactions`` count removals that
    had to swap-with-last (i.e. removals of interior rows); ``grows``
    count capacity doublings.
    """

    inserts: int = 0
    refreshes: int = 0
    fresh_skips: int = 0
    removes: int = 0
    compactions: int = 0
    grows: int = 0

    @property
    def upserts(self) -> int:
        return self.inserts + self.refreshes + self.fresh_skips

    def as_dict(self) -> dict[str, float]:
        """Flat counter view, the shape telemetry collectors consume."""
        return {
            "inserts": self.inserts,
            "refreshes": self.refreshes,
            "fresh_skips": self.fresh_skips,
            "removes": self.removes,
            "compactions": self.compactions,
            "grows": self.grows,
            "upserts": self.upserts,
        }


def top_k_order(
    scores: np.ndarray, event_ids: np.ndarray, k: int | None = None
) -> np.ndarray:
    """Indices of ``scores`` ordered by ``(-score, event_id)``, top ``k``.

    Reproduces the brute-force ranking contract exactly, including
    tie-breaks: equal scores order by ascending event id, and fully
    equal keys keep input order (``np.lexsort`` is stable).  When
    ``k`` is given, ``np.argpartition`` preselects the top-``k`` score
    values in O(n) — candidates tied with the k-th score are all kept
    through the partition so boundary ties still break by id.
    """
    n = int(scores.shape[0])
    if k is None or k >= n:
        selected = np.arange(n)
    else:
        top = np.argpartition(scores, n - k)[n - k :]
        kth = scores[top].min()
        selected = np.flatnonzero(scores >= kth)
    order = np.lexsort((event_ids[selected], -scores[selected]))
    return selected[order][:k]


@dataclass
class EventIndex:
    """Contiguous, incrementally maintained event-vector index."""

    initial_capacity: int = _INITIAL_CAPACITY
    stats: IndexStats = field(default_factory=IndexStats)

    def __post_init__(self) -> None:
        if self.initial_capacity < 1:
            raise ValueError(
                f"initial_capacity must be >= 1, got {self.initial_capacity}"
            )
        # Reentrant: score_ids holds the lock while calling the locked
        # public scoring methods.
        self._lock = threading.RLock()
        self._rows: dict[int, int] = {}  # guarded-by: _lock
        self._versions: dict[int, str] = {}  # guarded-by: _lock
        self._size = 0  # guarded-by: _lock
        self._dim: int | None = None  # guarded-by: _lock
        # Row-aligned storage, allocated lazily at the first upsert
        # (the vector dimension is only known then).
        self._matrix: np.ndarray | None = None  # guarded-by: _lock
        self._scales: np.ndarray | None = None  # guarded-by: _lock
        self._ids: np.ndarray | None = None  # guarded-by: _lock
        self._created: np.ndarray | None = None  # guarded-by: _lock
        self._starts: np.ndarray | None = None  # guarded-by: _lock
        self._events: list[Event] = []  # guarded-by: _lock

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def __contains__(self, event_id: int) -> bool:
        with self._lock:
            return event_id in self._rows

    @property
    def dim(self) -> int | None:
        """Vector dimensionality, ``None`` until the first upsert."""
        with self._lock:
            return self._dim

    @property
    def capacity(self) -> int:
        with self._lock:
            return 0 if self._matrix is None else self._matrix.shape[0]

    def version(self, event_id: int) -> str | None:
        """Stored version fingerprint, ``None`` when absent."""
        with self._lock:
            return self._versions.get(event_id)

    def row_of(self, event_id: int) -> int:
        """Current row of an event (rows move under compaction)."""
        with self._lock:
            return self._rows[event_id]

    def rows_for(self, event_ids: Iterable[int]) -> np.ndarray:
        """Row indices for a candidate id list (all must be present).

        Rows move under concurrent compaction the moment the lock is
        released — for scoring, use the atomic :meth:`score_ids`.
        """
        with self._lock:
            rows = self._rows
            return np.fromiter(
                (rows[event_id] for event_id in event_ids), dtype=np.intp
            )

    def event_at(self, row: int) -> Event:
        with self._lock:
            return self._events[row]

    @property
    def events(self) -> list[Event]:
        """The indexed event objects (copy, row order)."""
        with self._lock:
            return list(self._events)

    @property
    def event_ids(self) -> np.ndarray:
        """Event ids row-aligned with :attr:`vectors` (copy)."""
        with self._lock:
            if self._ids is None:
                return np.empty(0, dtype=np.int64)
            return self._ids[: self._size].copy()

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the live L2-normalized rows.

        A *view*, not a copy — zero-cost for parity tests, but its
        contents track concurrent mutation; lock-consistent reads go
        through :meth:`score_ids`.
        """
        with self._lock:
            if self._matrix is None:
                return np.empty((0, 0), dtype=np.float64)
            view = self._matrix[: self._size]
            view.flags.writeable = False
            return view

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _allocate(self, dim: int) -> None:
        capacity = max(self.initial_capacity, 1)
        self._dim = dim
        self._matrix = np.zeros((capacity, dim), dtype=np.float64)
        self._scales = np.zeros(capacity, dtype=np.float64)
        self._ids = np.zeros(capacity, dtype=np.int64)
        self._created = np.zeros(capacity, dtype=np.float64)
        self._starts = np.zeros(capacity, dtype=np.float64)

    def _grow(self) -> None:
        capacity = self.capacity * 2
        for name in ("_matrix", "_scales", "_ids", "_created", "_starts"):
            old = getattr(self, name)
            shape = (capacity, *old.shape[1:])
            new = np.zeros(shape, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)
        self.stats.grows += 1

    def upsert(
        self, event: Event, version: str, vector: np.ndarray | None = None
    ) -> str:
        """Insert or refresh one event row; returns what happened.

        Returns ``"fresh"`` (version already current — only the
        activity window and event reference are refreshed; ``vector``
        may be omitted), ``"refreshed"`` (version changed, row
        overwritten in place) or ``"inserted"`` (new row appended,
        doubling capacity as needed).  All three are O(1) amortized.
        """
        values = (
            None if vector is None else np.asarray(vector, dtype=np.float64)
        )
        if values is not None and values.ndim != 1:
            raise ValueError(f"vector must be 1-D, got shape {values.shape}")
        event_id = event.event_id
        with self._lock:
            row = self._rows.get(event_id)
            if row is not None and self._versions[event_id] == version:
                # Content fingerprint unchanged ⇒ the vector is current.
                # Times are not version-covered, so keep them up to date.
                self._created[row] = event.created_at
                self._starts[row] = event.starts_at
                self._events[row] = event
                self.stats.fresh_skips += 1
                return "fresh"
            if values is None:
                raise ValueError(
                    f"event {event_id} is new or stale in the index; "
                    "upsert requires its vector"
                )
            if self._matrix is None:
                self._allocate(values.shape[0])
            if values.shape[0] != self._dim:
                raise ValueError(
                    f"vector dim {values.shape[0]} != index dim {self._dim}"
                )
            if row is None:
                if self._size == self.capacity:
                    self._grow()
                row = self._size
                self._size += 1
                self._rows[event_id] = row
                self._events.append(event)
                self.stats.inserts += 1
                outcome = "inserted"
            else:
                self._events[row] = event
                self.stats.refreshes += 1
                outcome = "refreshed"
            norm = float(np.sqrt(values @ values))
            if norm > 0.0:
                self._matrix[row] = values / norm
            else:
                self._matrix[row] = 0.0
            self._scales[row] = norm / (norm + COSINE_EPS)
            self._ids[row] = event_id
            self._created[row] = event.created_at
            self._starts[row] = event.starts_at
            self._versions[event_id] = version
            return outcome

    def remove(self, event_id: int) -> bool:
        """Drop an event in O(1) by swapping the last row into its slot."""
        with self._lock:
            row = self._rows.pop(event_id, None)
            if row is None:
                return False
            del self._versions[event_id]
            last = self._size - 1
            if row != last:
                self._matrix[row] = self._matrix[last]
                self._scales[row] = self._scales[last]
                self._ids[row] = self._ids[last]
                self._created[row] = self._created[last]
                self._starts[row] = self._starts[last]
                self._events[row] = self._events[last]
                self._rows[int(self._ids[last])] = row
                self.stats.compactions += 1
            self._events.pop()
            self._size = last
            self.stats.removes += 1
            return True

    def clear(self) -> None:
        """Drop every row (storage is kept for reuse)."""
        with self._lock:
            self._rows.clear()
            self._versions.clear()
            self._events.clear()
            self._size = 0

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def _select(self, array: np.ndarray, rows: np.ndarray | None) -> np.ndarray:
        return array[: self._size] if rows is None else array[rows]

    def activity_mask(
        self, at_time: float, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorized ``Event.is_active`` over (a subset of) the rows."""
        with self._lock:
            created = self._select(self._created, rows)
            starts = self._select(self._starts, rows)
            return (created <= at_time) & (at_time < starts)

    def scores(
        self, query: np.ndarray, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Cosine of ``query`` against (a subset of) the rows.

        One matrix-vector product; numerically equal to
        :func:`repro.nn.cosine.cosine_similarity` per pair — the unit
        rows carry a residual ``‖e‖/(‖e‖+ε)`` scale so the training
        epsilon convention is reproduced, not approximated.
        """
        values = np.asarray(query, dtype=np.float64)
        norm = np.sqrt(values @ values) + COSINE_EPS
        with self._lock:
            if self._matrix is None:
                return np.empty(0, dtype=np.float64)
            dots = self._select(self._matrix, rows) @ values
            # repro: noqa[RPR101] fused GEMV form of nn.cosine; parity-tested <= 1e-9 vs pair_cosine
            return dots * (self._select(self._scales, rows) / norm)

    def scores_batch(
        self, queries: np.ndarray, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Cosine of a ``(m, dim)`` query matrix against the rows.

        A single GEMM: the multi-user serving primitive.  Returns
        shape ``(m, n_rows)``.
        """
        values = np.asarray(queries, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {values.shape}")
        # Per-row dot products, not (values * values).sum(axis=1): the
        # pairwise summation of .sum() rounds differently from the BLAS
        # dot used by the single-user path, which made batch scores
        # diverge from rank_events in the last ulp of the denominator.
        norms = np.fromiter(
            (float(row @ row) for row in values),
            dtype=np.float64,
            count=values.shape[0],
        )
        np.sqrt(norms, out=norms)
        norms += COSINE_EPS
        with self._lock:
            if self._matrix is None:
                return np.empty((values.shape[0], 0), dtype=np.float64)
            dots = values @ self._select(self._matrix, rows).T
            scales = self._select(self._scales, rows)
            return dots * (scales[None, :] / norms[:, None])

    def _resolve_ids(
        self, event_ids: Sequence[int], at_time: float | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Positions-into-``event_ids`` + rows, under the held lock.

        Ids not (or no longer) present are skipped — a concurrent
        remover winning the race is indistinguishable from the event
        never having been indexed.
        """
        rows_list: list[int] = []
        positions_list: list[int] = []
        mapping = self._rows
        for position, event_id in enumerate(event_ids):
            row = mapping.get(event_id)
            if row is not None:
                rows_list.append(row)
                positions_list.append(position)
        rows = np.asarray(rows_list, dtype=np.intp)
        positions = np.asarray(positions_list, dtype=np.intp)
        if rows.size and at_time is not None:
            active = np.flatnonzero(self.activity_mask(at_time, rows))
            rows = rows[active]
            positions = positions[active]
        return positions, rows

    def score_ids(
        self,
        query: np.ndarray,
        event_ids: Sequence[int],
        at_time: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Atomic resolve → activity filter → GEMV for one user.

        Returns ``(positions, scores)``: indices into ``event_ids``
        that were present (and active when ``at_time`` is given), and
        their cosine scores, aligned.  The three steps run under one
        lock acquisition — done separately, a concurrent
        swap-with-last ``remove`` can move a row between resolve and
        score, silently scoring the wrong event.
        """
        traced = _trace_active()
        wait_start = time.perf_counter() if traced else 0.0
        with self._lock:
            if traced:
                record_stage(
                    "repro_index_lock_wait",
                    time.perf_counter() - wait_start,
                )
            positions, rows = self._resolve_ids(event_ids, at_time)
            if rows.size == 0:
                return positions, np.empty(0, dtype=np.float64)
            if traced:
                with span("repro_index_gemv"):
                    return positions, self.scores(query, rows)
            return positions, self.scores(query, rows)

    def score_ids_batch(
        self,
        queries: np.ndarray,
        event_ids: Sequence[int],
        at_time: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Atomic resolve → activity filter → GEMM for a user cohort.

        Returns ``(positions, score_matrix)`` with ``score_matrix`` of
        shape ``(num_users, len(positions))``; same atomicity contract
        as :meth:`score_ids`.
        """
        values = np.asarray(queries, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {values.shape}")
        traced = _trace_active()
        wait_start = time.perf_counter() if traced else 0.0
        with self._lock:
            if traced:
                record_stage(
                    "repro_index_lock_wait",
                    time.perf_counter() - wait_start,
                )
            positions, rows = self._resolve_ids(event_ids, at_time)
            if rows.size == 0:
                empty = np.empty((values.shape[0], 0), dtype=np.float64)
                return positions, empty
            if traced:
                with span("repro_index_gemm"):
                    return positions, self.scores_batch(values, rows)
            return positions, self.scores_batch(values, rows)

    # ------------------------------------------------------------------
    # invariants (test/debug support)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise ``RuntimeError`` on internal inconsistency.

        Explicit raises (not ``assert``) so the checks survive ``-O``
        and carry a description of what broke; cheap enough for tests.
        """
        with self._lock:
            if not (self._size == len(self._rows) == len(self._versions)):
                raise RuntimeError(
                    f"size bookkeeping diverged: size={self._size}, "
                    f"rows={len(self._rows)}, versions={len(self._versions)}"
                )
            if len(self._events) != self._size:
                raise RuntimeError(
                    f"event list length {len(self._events)} != "
                    f"size {self._size}"
                )
            if sorted(self._rows.values()) != list(range(self._size)):
                raise RuntimeError(
                    "row indices are not a dense 0..size-1 range"
                )
            for event_id, row in self._rows.items():
                if int(self._ids[row]) != event_id:
                    raise RuntimeError(
                        f"id column mismatch at row {row}: "
                        f"{int(self._ids[row])} != {event_id}"
                    )
                if self._events[row].event_id != event_id:
                    raise RuntimeError(
                        f"event record mismatch at row {row} "
                        f"for id {event_id}"
                    )
            if self._size:
                live = self._matrix[: self._size]
                norms = np.sqrt((live * live).sum(axis=1))
                if not np.all((np.abs(norms - 1.0) < 1e-9) | (norms == 0.0)):
                    raise RuntimeError(
                        "live rows are neither unit-norm nor zero"
                    )


def brute_force_order(
    scores: Sequence[float], event_ids: Sequence[int], k: int | None = None
) -> list[int]:
    """Reference implementation of the ranking contract (tests only)."""
    order = sorted(
        range(len(scores)), key=lambda i: (-scores[i], event_ids[i])
    )
    return order[:k]
