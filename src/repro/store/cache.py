"""Representation-vector cache (stand-in for TAO, paper Section 4).

"The computation ... can be greatly reduced by pre-computing and
caching the user and event representation vectors.  User and event
vectors are only computed upon creation and important information
change.  They can be cached in distributed data store such as [TAO]
for quick access at recommendation time."

:class:`VectorCache` models exactly that contract in-process: entries
are keyed by (kind, entity id) and carry a *version* fingerprint of
the entity's information; a lookup with a stale version misses, which
is the "recompute upon important information change" semantics.

LRU ordering rides on dict insertion order: a hit re-inserts its entry
at the tail, so the head (``next(iter(...))``) is always the
least-recently-used victim — O(1) eviction instead of the O(n)
min-scan a timestamp comparison would need.

Thread safety: every operation (including the read path — ``get``
re-inserts its entry to update recency) mutates the entry dict, so
each holds ``self._lock``; the attribute is ``# guarded-by: _lock``
annotated and checked statically by RPR401 (:mod:`repro.analysis.locks`).

When a :class:`repro.obs.trace.Tracer` is installed, :meth:`get`
records a ``repro_cache_get`` stage tagged ``result=hit|miss|stale``,
so per-request latency attribution separates cache hits from the
misses that trigger tower re-encoding.  Without a tracer the cost is
one module-global ``None`` check.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import active as _trace_active
from repro.obs.trace import record_stage

__all__ = ["CacheStats", "VectorCache"]


@dataclass
class CacheStats:
    """Hit/miss counters, observable for capacity planning.

    ``stale_hits`` count version-mismatch lookups (also counted as
    misses); ``invalidations`` are explicit drops; ``evictions`` are
    capacity-pressure drops — the signal that the cache is undersized,
    distinct from both.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stale_hits: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat counter view, the shape telemetry exporters consume."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    version: str
    vector: np.ndarray


@dataclass
class VectorCache:
    """Versioned vector store with optional LRU capacity bound."""

    capacity: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._lock = threading.RLock()
        # Insertion order IS the recency order: head = LRU, tail = MRU.
        self._entries: dict[tuple[str, int], _Entry] = {}  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, kind: str, entity_id: int, version: str) -> np.ndarray | None:
        """Return the cached vector if present *and* version-current."""
        if not _trace_active():
            return self._get(kind, entity_id, version)[0]
        start = time.perf_counter()
        vector, outcome = self._get(kind, entity_id, version)
        record_stage(
            "repro_cache_get",
            time.perf_counter() - start,
            tags={"kind": kind, "result": outcome},
        )
        return vector

    def _get(
        self, kind: str, entity_id: int, version: str
    ) -> tuple[np.ndarray | None, str]:
        key = (kind, entity_id)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None, "miss"
            if entry.version != version:
                # Information changed since the vector was computed.
                self.stats.misses += 1
                self.stats.stale_hits += 1
                del self._entries[key]
                return None, "stale"
            # Move to tail: this entry is now the most recently used.
            del self._entries[key]
            self._entries[key] = entry
            self.stats.hits += 1
            return entry.vector, "hit"

    def peek(self, kind: str, entity_id: int, version: str) -> np.ndarray | None:
        """Recency-neutral lookup: the vector if current, else ``None``.

        For batch warmers: a fresh entry counts as a hit (the warmer
        would otherwise have recomputed it) but is *not* moved to the
        MRU tail — warming a large cohort must not churn the LRU
        order of the live working set.  An absent or stale entry is
        not counted (and a stale one is not dropped); the warmer
        follows up with :meth:`put`, which records the real work done.
        """
        with self._lock:
            entry = self._entries.get((kind, entity_id))
            if entry is None or entry.version != version:
                return None
            self.stats.hits += 1
            return entry.vector

    def put(
        self, kind: str, entity_id: int, version: str, vector: np.ndarray
    ) -> None:
        """Store a vector, evicting the LRU entry at capacity."""
        key = (kind, entity_id)
        entry = _Entry(
            version=version,
            vector=np.asarray(vector, dtype=np.float64).copy(),
        )
        with self._lock:
            existing = key in self._entries
            if existing:
                del self._entries[key]  # re-insert at tail below
            elif (
                self.capacity is not None
                and len(self._entries) >= self.capacity
            ):
                del self._entries[next(iter(self._entries))]
                self.stats.evictions += 1
            self._entries[key] = entry

    def invalidate(self, kind: str, entity_id: int) -> bool:
        """Explicitly drop an entry (e.g. on entity deletion)."""
        with self._lock:
            removed = self._entries.pop((kind, entity_id), None) is not None
            if removed:
                self.stats.invalidations += 1
            return removed

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()
