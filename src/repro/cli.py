"""Command-line interface.

Ten subcommands cover the life cycle a downstream user needs:

* ``repro-events generate`` — synthesize a dataset and save it;
* ``repro-events train`` — train the joint representation model on a
  dataset and save the model bundle;
* ``repro-events recommend`` — load a bundle + dataset and rank the
  active events for a user;
* ``repro-events experiment`` — run the paper's Table-1/Table-2
  evaluation end-to-end and print the reproduced tables;
* ``repro-events metrics`` — render the final metrics snapshot of a
  telemetry file (written via ``--metrics-out``) as Prometheus text;
* ``repro-events loadgen`` — drive open-loop Poisson traffic against
  a self-contained serving stack with request tracing, and report
  latency percentiles, per-stage attribution, and an SLO health
  verdict; ``--server http`` routes the same traffic through the
  micro-batching HTTP server end-to-end;
* ``repro-events serve`` — stand up the batched HTTP serving API
  (``/recommend``, ``/similar-events``, ``/score``, ``/healthz``,
  ``/metrics``) over a synthetic or trained model;
* ``repro-events health`` — evaluate SLO specs against a telemetry
  snapshot (or a fresh synthetic load run); exit 0 healthy, 1
  breached;
* ``repro-events bench-gate`` — compare a fresh loadgen report
  against the committed ``BENCH_serving.json`` trajectory; exit 0
  within tolerance, 1 regression;
* ``repro-events analyze`` — run the project's static-analysis rules
  (``python -m repro.analysis`` behind a subcommand).

Examples::

    repro-events generate --scale small --seed 7 --out world.json.gz
    repro-events train --dataset world.json.gz --bundle model_bundle \\
        --metrics-out telemetry.jsonl
    repro-events recommend --dataset world.json.gz --bundle model_bundle \\
        --user-id 3 --at-time 900 --top-k 5 --serving indexed
    repro-events experiment --scale small --tables 1 2
    repro-events metrics --telemetry telemetry.jsonl --exemplars
    repro-events loadgen --rate 200 --duration 2 --warmup 50 \\
        --chrome-out trace.json --bench-out BENCH_serving.json
    repro-events loadgen --server http --rate 300 --warmup 50
    repro-events serve --port 8321 --pool-size 500
    repro-events health --telemetry telemetry.jsonl \\
        --slo 'repro_cache_hit_rate>=0.9'
    repro-events bench-gate --bench BENCH_serving.json --report report.json
    repro-events analyze src tests benchmarks --format json

``--metrics-out PATH`` (on ``train`` and ``experiment``) enables the
telemetry registry for the run and writes a JSONL file of per-epoch
records plus a final metrics snapshot — see the Observability section
of README.md.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.config import JointModelConfig, TrainingConfig
from repro.core.model import JointUserEventModel
from repro.core.persistence import load_model_bundle, save_model_bundle
from repro.core.service import RepresentationService
from repro.core.trainer import RepresentationTrainer
from repro.datagen.config import DataConfig
from repro.datagen.dataset import EventRecDataset, build_dataset
from repro.eval.protocol import TwoStageExperiment
from repro.eval.reporting import format_table, render_pr_curves
from repro.gbdt.boosting import GBDTConfig
from repro.obs import (
    MetricsRegistry,
    TelemetryWriter,
    last_snapshot,
    render_prometheus,
    use_registry,
)
from repro.text.documents import DocumentEncoder

__all__ = ["main", "build_parser"]

_DATA_SCALES = {
    "small": DataConfig.small,
    "bench": DataConfig.bench,
}
_MODEL_SCALES = {
    "small": JointModelConfig.small,
    "bench": JointModelConfig.bench,
    "paper": JointModelConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-events",
        description="Joint user-event representation learning (ICDE 2017 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a social-network event dataset"
    )
    generate.add_argument("--scale", choices=sorted(_DATA_SCALES), default="small")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .json.gz path")

    train = commands.add_parser(
        "train", help="train the representation model on a dataset"
    )
    train.add_argument("--dataset", required=True)
    train.add_argument("--bundle", required=True, help="output bundle directory")
    train.add_argument("--model-scale", choices=sorted(_MODEL_SCALES), default="bench")
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--learning-rate", type=float, default=0.015)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write a JSONL telemetry file here",
    )

    recommend = commands.add_parser(
        "recommend", help="rank active events for a user"
    )
    recommend.add_argument("--dataset", required=True)
    recommend.add_argument("--bundle", required=True)
    recommend.add_argument("--user-id", type=int, required=True)
    recommend.add_argument("--at-time", type=float, required=True)
    recommend.add_argument("--top-k", type=int, default=10)
    recommend.add_argument(
        "--serving", choices=("indexed", "loop"), default="indexed",
        help="rank via the batched event index (default) or the "
        "brute-force per-event loop (the parity oracle)",
    )

    experiment = commands.add_parser(
        "experiment", help="run the Table-1/Table-2 evaluation end-to-end"
    )
    experiment.add_argument("--scale", choices=sorted(_DATA_SCALES), default="small")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--epochs", type=int, default=6)
    experiment.add_argument(
        "--tables", type=int, nargs="+", choices=(1, 2), default=[1, 2]
    )
    experiment.add_argument("--curves", action="store_true",
                            help="also render ASCII P/R curves")
    experiment.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write a JSONL telemetry file here",
    )

    metrics = commands.add_parser(
        "metrics", help="render a telemetry snapshot as Prometheus text"
    )
    metrics.add_argument(
        "--telemetry", required=True,
        help="JSONL telemetry file written by --metrics-out",
    )
    metrics.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus"
    )
    metrics.add_argument(
        "--exemplars", action="store_true",
        help="append OpenMetrics exemplar suffixes (trace ids) to "
        "histogram bucket lines",
    )

    loadgen = commands.add_parser(
        "loadgen",
        help="open-loop load harness for the serving path",
        description="Replay Poisson-arrival rank/score traffic against a "
        "self-contained synthetic RepresentationService across worker "
        "threads, with request tracing on, and report p50/p95/p99 "
        "latency plus per-stage attribution computed from the traces.",
    )
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="offered arrival rate, requests/second")
    loadgen.add_argument("--duration", type=float, default=2.0,
                         help="seconds of open-loop arrivals")
    loadgen.add_argument("--workers", type=int, default=4)
    loadgen.add_argument("--top-k", type=int, default=10)
    loadgen.add_argument("--pool-size", type=int, default=500,
                         help="candidate-pool size (events in the index)")
    loadgen.add_argument("--batch-users", type=int, default=1,
                         help="> 1 routes rank traffic through rank_events_batch")
    loadgen.add_argument("--score-fraction", type=float, default=0.2,
                         help="fraction of requests that are single-pair score calls")
    loadgen.add_argument("--warmup", type=int, default=0,
                         help="unmeasured warm-up requests issued before the "
                         "open-loop schedule (excluded from all statistics)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--keep-slowest", type=int, default=16,
                         help="tail sampler: always retain the N slowest traces")
    loadgen.add_argument("--sample-fraction", type=float, default=0.05,
                         help="tail sampler: uniform background sample fraction")
    loadgen.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write retained traces as JSONL here")
    loadgen.add_argument("--chrome-out", default=None, metavar="PATH",
                         help="write retained traces as Chrome trace_event "
                         "JSON (chrome://tracing / Perfetto) here")
    loadgen.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="write a JSONL telemetry snapshot here")
    loadgen.add_argument("--bench-out", default=None, metavar="PATH",
                         help="append a trajectory point to this BENCH_*.json")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of text")
    loadgen.add_argument(
        "--server", choices=("inprocess", "http"), default="inprocess",
        help="inprocess = call the service directly (default); http = "
        "boot the micro-batching serving API in-process and drive it "
        "over HTTP, measuring the batched end-to-end path",
    )
    loadgen.add_argument("--batch-window", type=float, default=0.003,
                         help="http server: micro-batch deadline window, seconds")
    loadgen.add_argument("--max-batch", type=int, default=32,
                         help="http server: flush when this many requests queue")

    serve = commands.add_parser(
        "serve",
        help="run the batched HTTP serving API",
        description="Serve /recommend, /similar-events, /score, /healthz "
        "and /metrics over a RepresentationService, coalescing "
        "concurrent /recommend requests into single GEMM batches. "
        "Without --bundle a synthetic untrained stack is served (the "
        "loadgen world); with --bundle and --dataset a trained model "
        "serves that dataset's users and events.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--dataset", default=None,
                       help="dataset .json.gz to serve (requires --bundle)")
    serve.add_argument("--bundle", default=None,
                       help="trained model bundle directory")
    serve.add_argument("--pool-size", type=int, default=500,
                       help="synthetic mode: candidate-pool size")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--batch-window", type=float, default=0.003,
                       help="micro-batch deadline window, seconds")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="flush when this many requests queue")

    health = commands.add_parser(
        "health",
        help="evaluate SLO health; exit 0 healthy, 1 breached",
        description="Evaluate declarative SLO specs against a telemetry "
        "snapshot (--telemetry) or against a fresh synthetic load run, "
        "and print the verdict.  Exit status: 0 healthy, 1 breached, "
        "2 usage error.",
    )
    health.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="JSONL telemetry file (written by --metrics-out) to "
        "evaluate; omitted = run a short synthetic load first",
    )
    health.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="SLO spec '[name=]metric[{tag=value,...}][.stat]<=target' "
        "(repeatable; default: the stock serving SLOs)",
    )
    health.add_argument("--rate", type=float, default=200.0,
                        help="synthetic run: offered rate (req/s)")
    health.add_argument("--duration", type=float, default=1.0,
                        help="synthetic run: seconds of arrivals")
    health.add_argument("--workers", type=int, default=4)
    health.add_argument("--pool-size", type=int, default=500)
    health.add_argument("--warmup", type=int, default=50,
                        help="synthetic run: unmeasured warm-up requests")
    health.add_argument("--seed", type=int, default=0)
    health.add_argument("--json", action="store_true",
                        help="print the verdict as JSON instead of text")
    health.add_argument("--out", default=None, metavar="PATH",
                        help="also write the verdict JSON here (CI artifact)")

    bench_gate = commands.add_parser(
        "bench-gate",
        help="gate a loadgen report against the bench trajectory",
        description="Compare a fresh loadgen report (--report, the "
        "`loadgen --json` output) against the committed BENCH_*.json "
        "trajectory (--bench).  Baselines are medians over comparable "
        "points (same workers and pool_size, unsaturated).  Exit "
        "status: 0 within tolerance, 1 regression, 2 usage error.",
    )
    bench_gate.add_argument("--bench", required=True, metavar="PATH",
                            help="committed BENCH_*.json trajectory")
    bench_gate.add_argument("--report", required=True, metavar="PATH",
                            help="candidate report JSON (loadgen --json)")
    bench_gate.add_argument("--p50-tolerance", type=float, default=3.0,
                            help="p50 bound = baseline median x this")
    bench_gate.add_argument("--p95-tolerance", type=float, default=3.0,
                            help="p95 bound = baseline median x this")
    bench_gate.add_argument("--p99-tolerance", type=float, default=5.0,
                            help="p99 bound = baseline median x this")
    bench_gate.add_argument("--rps-tolerance", type=float, default=0.5,
                            help="throughput floor = baseline median x this")
    bench_gate.add_argument("--json", action="store_true",
                            help="print the gate result as JSON")

    analyze = commands.add_parser(
        "analyze",
        help="run the project static-analysis rules (RPR codes)",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    analyze.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    analyze.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    analyze.add_argument(
        "--no-unused-noqa", action="store_true",
        help="do not report stale # repro: noqa suppressions (RPR100)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    analyze.add_argument(
        "--changed", action="store_true",
        help="only analyze files changed vs --ref plus untracked files",
    )
    analyze.add_argument(
        "--ref", default="origin/main", metavar="GITREF",
        help="git ref --changed diffs against (default: origin/main)",
    )
    return parser


def _cmd_generate(args) -> int:
    dataset = build_dataset(_DATA_SCALES[args.scale](seed=args.seed))
    dataset.save(args.out)
    summary = dataset.summary()
    print(f"wrote {args.out}")
    print(
        f"  users={summary['num_users']:.0f} events={summary['num_events']:.0f} "
        f"impressions={summary['num_impressions']:.0f} "
        f"positive_rate={summary['positive_rate']:.3f}"
    )
    return 0


def _epoch_telemetry_hook(writer: TelemetryWriter):
    """An ``on_epoch_end`` callback appending epoch records to JSONL."""

    def on_epoch_end(epoch_index, stats):
        record = {"record": "epoch"}
        record.update(
            {key: float(value) for key, value in stats.items()}
        )
        record["epoch"] = int(stats["epoch"])
        writer.write(record)

    return on_epoch_end


def _serving_smoke(model, dataset, sample_size: int = 20) -> None:
    """Exercise the serving path so its histograms land in telemetry.

    A train run never serves; encoding a small cohort cold and then
    ranking it warm populates encode/rank latencies, the index
    maintenance counters, and the cache hit-rate the snapshot exports
    — the Section-4 capacity-planning signals.  Both serving modes and
    the batched multi-user path are exercised.
    """
    service = RepresentationService(model)
    users = dataset.users[:sample_size]
    events = dataset.events[: sample_size * 5]
    for user in users:
        service.user_vector(user)
    for event in events:
        service.event_vector(event)
    for user in users:
        service.rank_events(user, events, top_k=10)
    service.rank_events(users[0], events, top_k=10, serving="loop")
    service.rank_events_batch(users, events, top_k=10)


def _cmd_train(args) -> int:
    dataset = EventRecDataset.load(args.dataset)
    splits = dataset.split()
    encoder = DocumentEncoder.fit(dataset.users, dataset.events, min_df=2)
    model = JointUserEventModel(
        _MODEL_SCALES[args.model_scale](seed=args.seed), encoder
    )
    pairs_u = [
        encoder.encode_user(dataset.users_by_id[i.user_id])
        for i in splits.representation_train
    ]
    pairs_e = [
        encoder.encode_event(dataset.events_by_id[i.event_id])
        for i in splits.representation_train
    ]
    labels = np.array(
        [1.0 if i.participated else 0.0 for i in splits.representation_train]
    )
    print(f"training on {len(labels)} pairs ...")
    trainer = RepresentationTrainer(
        model,
        TrainingConfig(
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            seed=args.seed,
        ),
    )
    if args.metrics_out:
        with use_registry(MetricsRegistry()) as registry:
            with TelemetryWriter(args.metrics_out) as writer:
                writer.write({"record": "run", "command": "train",
                              "dataset": args.dataset, "epochs": args.epochs})
                history = trainer.fit(
                    pairs_u, pairs_e, labels,
                    on_epoch_end=_epoch_telemetry_hook(writer),
                )
                _serving_smoke(model, dataset)
                writer.write_snapshot(registry, command="train")
        print(f"telemetry written to {args.metrics_out}")
    else:
        history = trainer.fit(pairs_u, pairs_e, labels)
    print(
        f"  {history.epochs_run} epochs, best epoch {history.best_epoch}, "
        f"final val loss {history.validation_losses[-1]:.4f}"
    )
    path = save_model_bundle(model, args.bundle)
    print(f"bundle saved to {path}")
    return 0


def _cmd_recommend(args) -> int:
    dataset = EventRecDataset.load(args.dataset)
    if args.user_id not in dataset.users_by_id:
        print(f"error: user {args.user_id} not in dataset", file=sys.stderr)
        return 2
    model = load_model_bundle(args.bundle)
    service = RepresentationService(model, serving=args.serving)
    user = dataset.users_by_id[args.user_id]
    if args.top_k < 1:
        print(f"error: --top-k must be >= 1, got {args.top_k}", file=sys.stderr)
        return 2
    ranked = service.rank_events(
        user, dataset.events, at_time=args.at_time, top_k=args.top_k
    )
    if not ranked:
        print("no active events at that time")
        return 0
    print(f"top {len(ranked)} events for user {args.user_id} at t={args.at_time}:")
    for scored in ranked:
        print(
            f"  {scored.score:+.3f}  [{scored.event.category:<16s}] "
            f"{scored.event.title}"
        )
    return 0


def _cmd_experiment(args) -> int:
    dataset = build_dataset(_DATA_SCALES[args.scale](seed=args.seed))
    model_config = (
        JointModelConfig.small(seed=args.seed)
        if args.scale == "small"
        else JointModelConfig.bench(seed=args.seed)
    )
    gbdt = (
        GBDTConfig(num_trees=40, max_leaves=8, min_samples_leaf=5)
        if args.scale == "small"
        else GBDTConfig(num_trees=200, max_leaves=12)
    )
    experiment = TwoStageExperiment(
        dataset,
        model_config=model_config,
        training_config=TrainingConfig(epochs=args.epochs, seed=args.seed),
        gbdt_config=gbdt,
        use_siamese_init=True,
        min_df=1 if args.scale == "small" else 2,
    )
    def run() -> None:
        print("preparing (training representation model) ...")
        experiment.prepare()
        if 1 in args.tables:
            results = experiment.run_table1()
            print(format_table(results, "TABLE 1 — integration settings"))
            if args.curves:
                print(render_pr_curves(results))
        if 2 in args.tables:
            results = experiment.run_table2()
            print(format_table(results, "TABLE 2 — feature combinations"))
            if args.curves:
                print(render_pr_curves(results))

    if args.metrics_out:
        with use_registry(MetricsRegistry()) as registry:
            run()
            with TelemetryWriter(args.metrics_out) as writer:
                writer.write({"record": "run", "command": "experiment",
                              "scale": args.scale, "tables": list(args.tables)})
                writer.write_snapshot(registry, command="experiment")
        print(f"telemetry written to {args.metrics_out}")
    else:
        run()
    return 0


def _cmd_metrics(args) -> int:
    try:
        snapshot = last_snapshot(args.telemetry)
    except FileNotFoundError:
        print(f"error: telemetry file not found: {args.telemetry}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_prometheus(snapshot, exemplars=args.exemplars), end="")
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.loadgen import (
        LoadgenConfig,
        append_bench_point,
        bench_point,
        build_synthetic_service,
        format_report,
        run_load,
    )
    from repro.obs import (
        TailSampler,
        Tracer,
        use_tracer,
        write_chrome_trace,
        write_trace_jsonl,
    )

    try:
        config = LoadgenConfig(
            rate=args.rate,
            duration=args.duration,
            workers=args.workers,
            top_k=args.top_k,
            score_fraction=args.score_fraction,
            batch_users=args.batch_users,
            warmup=args.warmup,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"building synthetic serving stack (pool={args.pool_size}) ...",
        file=sys.stderr,
    )
    service, users, events = build_synthetic_service(
        seed=args.seed, pool_size=args.pool_size
    )
    sampler = TailSampler(
        keep_slowest=args.keep_slowest,
        sample_fraction=args.sample_fraction,
        seed=args.seed,
    )
    with use_registry(MetricsRegistry()) as registry:
        with use_tracer(Tracer(sampler)) as tracer:
            if args.server == "http":
                from repro.serving import (
                    HttpServiceClient,
                    ServingServer,
                    ThreadedServer,
                )

                serving = ServingServer(
                    service,
                    users,
                    events,
                    window_seconds=args.batch_window,
                    max_batch=args.max_batch,
                    registry=registry,
                )
                with ThreadedServer(serving) as hosted:
                    print(
                        f"serving on http://{hosted.host}:{hosted.port} "
                        f"(window={args.batch_window * 1e3:g} ms, "
                        f"max_batch={args.max_batch})",
                        file=sys.stderr,
                    )
                    client = HttpServiceClient(
                        hosted.host,
                        hosted.port,
                        full_pool_size=len(events),
                        monitors=service.monitors,
                    )
                    try:
                        report = run_load(
                            client,
                            users,
                            events,
                            config,
                            registry=registry,
                            mode="http",
                        )
                    finally:
                        client.close()
                flushed = serving.batcher.batches_flushed
                batched = serving.batcher.requests_batched
                print(
                    f"serving batches: {flushed} flushed, "
                    f"{batched} requests, mean batch size "
                    f"{batched / flushed if flushed else 0.0:.2f}",
                    file=sys.stderr,
                )
            else:
                report = run_load(
                    service, users, events, config, registry=registry
                )
        traces = tracer.traces()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_report(report))
    if args.trace_out:
        count = write_trace_jsonl(traces, args.trace_out)
        print(f"{count} traces written to {args.trace_out}", file=sys.stderr)
    if args.chrome_out:
        count = write_chrome_trace(traces, args.chrome_out)
        print(
            f"{count} trace events written to {args.chrome_out} "
            "(load in chrome://tracing or Perfetto)",
            file=sys.stderr,
        )
    if args.metrics_out:
        with TelemetryWriter(args.metrics_out) as writer:
            writer.write({"record": "run", "command": "loadgen"})
            writer.write_snapshot(registry, command="loadgen")
        print(f"telemetry written to {args.metrics_out}", file=sys.stderr)
    if args.bench_out:
        document = append_bench_point(
            args.bench_out, bench_point(report.as_dict())
        )
        print(
            f"trajectory point {len(document['points'])} appended to "
            f"{args.bench_out}",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import ServingServer, ThreadedServer

    if (args.dataset is None) != (args.bundle is None):
        print(
            "error: --dataset and --bundle must be given together",
            file=sys.stderr,
        )
        return 2
    if args.dataset is not None:
        dataset = EventRecDataset.load(args.dataset)
        model = load_model_bundle(args.bundle)
        service = RepresentationService(model)
        users = sorted(dataset.users, key=lambda user: user.user_id)
        events = sorted(dataset.events, key=lambda event: event.event_id)
        print(f"warming {len(users)} users, {len(events)} events ...",
              file=sys.stderr)
        service.warm(users, events)
    else:
        from repro.loadgen import build_synthetic_service

        print(
            f"building synthetic serving stack (pool={args.pool_size}) ...",
            file=sys.stderr,
        )
        service, users, events = build_synthetic_service(
            seed=args.seed, pool_size=args.pool_size
        )
    with use_registry(MetricsRegistry()) as registry:
        server = ServingServer(
            service,
            users,
            events,
            window_seconds=args.batch_window,
            max_batch=args.max_batch,
            registry=registry,
        )
        hosted = ThreadedServer(server, host=args.host, port=args.port)
        try:
            host, port = hosted.start()
        except RuntimeError as error:
            cause = error.__cause__ if error.__cause__ is not None else error
            print(f"error: {cause}", file=sys.stderr)
            return 2
        print(
            f"serving on http://{host}:{port} "
            f"(window={args.batch_window * 1e3:g} ms, "
            f"max_batch={args.max_batch}); Ctrl-C to stop",
            file=sys.stderr,
        )
        try:
            while hosted.join(timeout=1.0):
                pass
        except KeyboardInterrupt:
            print("draining ...", file=sys.stderr)
        finally:
            hosted.stop()
    return 0


def _cmd_health(args) -> int:
    import json

    from repro.obs.health import (
        HealthMonitor,
        default_serving_slos,
        format_health,
        parse_slo,
    )

    try:
        slos = (
            tuple(parse_slo(text) for text in args.slo)
            if args.slo
            else default_serving_slos()
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.telemetry is not None:
        try:
            snapshot = last_snapshot(args.telemetry)
        except FileNotFoundError:
            print(
                f"error: telemetry file not found: {args.telemetry}",
                file=sys.stderr,
            )
            return 2
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        verdict = HealthMonitor(slos).evaluate(snapshot)
    else:
        from repro.loadgen import (
            LoadgenConfig,
            build_synthetic_service,
            run_load,
        )

        try:
            config = LoadgenConfig(
                rate=args.rate,
                duration=args.duration,
                workers=args.workers,
                warmup=args.warmup,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"running synthetic load (pool={args.pool_size}, "
            f"{config.duration:.1f} s) ...",
            file=sys.stderr,
        )
        service, users, events = build_synthetic_service(
            seed=args.seed, pool_size=args.pool_size
        )
        with use_registry(MetricsRegistry()) as registry:
            report = run_load(
                service, users, events, config, registry=registry, slos=slos
            )
        verdict = report.health
        if verdict is None:  # pragma: no cover - registry always enabled here
            print("error: no health verdict produced", file=sys.stderr)
            return 2

    if args.json:
        print(json.dumps(verdict.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_health(verdict))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(
            json.dumps(verdict.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"health report written to {args.out}", file=sys.stderr)
    return 0 if verdict.healthy else 1


def _cmd_bench_gate(args) -> int:
    import json
    from pathlib import Path

    from repro.loadgen import (
        GateTolerances,
        bench_point,
        check_bench_regression,
        format_gate,
    )

    try:
        document = json.loads(Path(args.bench).read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: bench file not found: {args.bench}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: bad bench JSON: {error}", file=sys.stderr)
        return 2
    try:
        report = json.loads(Path(args.report).read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: report file not found: {args.report}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: bad report JSON: {error}", file=sys.stderr)
        return 2
    try:
        tolerances = GateTolerances(
            latency_p50_ms=args.p50_tolerance,
            latency_p95_ms=args.p95_tolerance,
            latency_p99_ms=args.p99_tolerance,
            achieved_rps=args.rps_tolerance,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Accept either a raw loadgen report (has "latency") or an
    # already-flattened bench point (has "latency_p99_ms").
    candidate = bench_point(report) if "latency" in report else report
    result = check_bench_regression(document, candidate, tolerances)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_gate(result))
    return 0 if result.ok else 1


def _cmd_analyze(args) -> int:
    from repro.analysis.main import render_rule_list, run

    if args.list_rules:
        sys.stdout.write(render_rule_list())
        return 0
    select = args.select.split(",") if args.select else None
    return run(
        args.paths,
        output_format=args.format,
        select=select,
        report_unused_suppressions=not args.no_unused_noqa,
        changed_vs=args.ref if args.changed else None,
    )


_COMMANDS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "recommend": _cmd_recommend,
    "experiment": _cmd_experiment,
    "metrics": _cmd_metrics,
    "loadgen": _cmd_loadgen,
    "serve": _cmd_serve,
    "health": _cmd_health,
    "bench-gate": _cmd_bench_gate,
    "analyze": _cmd_analyze,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `... | head`);
        # exit quietly with the conventional SIGPIPE status.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
