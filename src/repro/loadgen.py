"""Open-loop load harness for the serving path.

Replays Poisson-arrival rank/score traffic against a
:class:`~repro.core.service.RepresentationService` from a pool of
worker threads and reports what the ROADMAP's serving arc needs to
know before building request coalescing: end-to-end latency
percentiles, achieved vs offered throughput, and — when a
:class:`~repro.obs.trace.Tracer` is installed — per-stage latency
attribution (encode / cache hit-miss / index lock wait / GEMV /
top-K) computed from real request traces.

**Open-loop** means arrivals follow a fixed schedule drawn up front
(exponential inter-arrival gaps at the offered rate) and are *not*
gated on completions; latency is measured from the *scheduled*
arrival, so queueing delay under saturation is charged to the
request instead of silently vanishing (the coordinated-omission
trap of closed-loop harnesses).

The request schedule, user choice, and operation mix are all drawn
from one seeded :class:`random.Random`, so a given config replays
the same traffic every run.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import random
import statistics
import subprocess
import time
from collections.abc import Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.config import JointModelConfig
from repro.core.model import JointUserEventModel
from repro.core.service import RepresentationService
from repro.datagen.config import DataConfig
from repro.datagen.dataset import build_dataset
from repro.entities import Event, User
from repro.obs.health import (
    HealthMonitor,
    HealthSnapshot,
    SLOSpec,
    default_serving_slos,
    format_health,
)
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.spans import span
from repro.obs.trace import Tracer, get_tracer
from repro.text.documents import DocumentEncoder

__all__ = [
    "LoadgenConfig",
    "RequestRecord",
    "LoadReport",
    "percentile",
    "run_load",
    "build_synthetic_service",
    "format_report",
    "append_bench_point",
    "bench_point",
    "git_commit",
    "GateTolerances",
    "GateCheck",
    "GateResult",
    "check_bench_regression",
    "format_gate",
]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run.

    ``rate`` is the *offered* mean arrival rate (requests/second);
    ``duration`` bounds the arrival schedule, not the run (in-flight
    requests drain after the last arrival).  ``score_fraction`` of
    requests are single-pair ``score`` calls, the rest are
    ``rank_events`` over the full candidate pool (or
    ``rank_events_batch`` over ``batch_users`` users when that is
    > 1).  ``warmup`` requests are issued *before* the open-loop
    schedule starts and are excluded from every summary statistic —
    they exist to fill caches and JIT-warm the allocator so the
    measured window reflects steady state, not cold start.
    Everything is driven by ``seed``; the warm-up phase draws from an
    offset rng so enabling it never perturbs the measured traffic.
    """

    rate: float = 200.0
    duration: float = 2.0
    workers: int = 4
    top_k: int = 10
    score_fraction: float = 0.2
    batch_users: int = 1
    warmup: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {self.rate}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if not 0.0 <= self.score_fraction <= 1.0:
            raise ValueError(
                f"score_fraction must be in [0, 1], got {self.score_fraction}"
            )
        if self.batch_users < 1:
            raise ValueError(f"batch_users must be >= 1, got {self.batch_users}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")


@dataclass(frozen=True)
class RequestRecord:
    """One completed request; times are seconds from harness start.

    ``latency`` runs from the **scheduled** arrival to completion and
    therefore includes dispatcher lag and executor queue wait;
    ``service`` covers only the service call itself.
    """

    index: int
    op: str
    scheduled: float
    started: float
    finished: float
    trace_id: str | None

    @property
    def latency(self) -> float:
        return self.finished - self.scheduled

    @property
    def service(self) -> float:
        return self.finished - self.started

    @property
    def queue_wait(self) -> float:
        return self.started - self.scheduled


def percentile(values: Sequence[float], q: float) -> float:
    """Exact percentile (linear interpolation), ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (rank - low) * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class LoadReport:
    """The harness's verdict: latency, throughput, attribution."""

    config: LoadgenConfig
    requests: int
    wall_seconds: float
    offered_rps: float
    achieved_rps: float
    latency: dict[str, float]
    service: dict[str, float]
    queue_wait: dict[str, float]
    ops: dict[str, int]
    saturated: bool
    attribution: list[dict[str, float | str]] = field(default_factory=list)
    records: tuple[RequestRecord, ...] = ()
    pool_size: int = 0
    warmup_excluded: int = 0
    health: HealthSnapshot | None = None
    # How the service was reached: "inprocess" (direct method calls)
    # or "http" (through the repro.serving server + client).  Bench
    # points are only comparable within one mode.
    mode: str = "inprocess"

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view (drops the raw per-request records)."""
        return {
            "config": dataclasses.asdict(self.config),
            "requests": self.requests,
            "wall_seconds": self.wall_seconds,
            "offered_rps": self.offered_rps,
            "achieved_rps": self.achieved_rps,
            "latency": dict(self.latency),
            "service": dict(self.service),
            "queue_wait": dict(self.queue_wait),
            "ops": dict(self.ops),
            "saturated": self.saturated,
            "attribution": [dict(row) for row in self.attribution],
            "pool_size": self.pool_size,
            "warmup_excluded": self.warmup_excluded,
            "health": self.health.as_dict() if self.health is not None else None,
            "mode": self.mode,
        }


def _summary(values: Sequence[float]) -> dict[str, float]:
    return {
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def _export_report_gauges(
    registry: MetricsRegistry,
    latency: Mapping[str, float],
    queue_wait: Mapping[str, float],
    achieved_rps: float,
    saturated: bool,
) -> None:
    """Publish the report's headline numbers as ``repro_loadgen_*``
    gauges so SLO specs (and any scraper) can read them."""
    for stat in ("p50", "p95", "p99", "max", "mean"):
        registry.gauge(
            "repro_loadgen_latency_seconds", tags={"stat": stat}
        ).set(latency[stat])
        registry.gauge(
            "repro_loadgen_queue_wait_seconds", tags={"stat": stat}
        ).set(queue_wait[stat])
    registry.gauge("repro_loadgen_achieved_rps").set(achieved_rps)
    registry.gauge("repro_loadgen_saturated").set(1.0 if saturated else 0.0)


def run_load(
    service: RepresentationService | Any,
    users: Sequence[User],
    events: Sequence[Event],
    config: LoadgenConfig,
    registry: MetricsRegistry | None = None,
    slos: Sequence[SLOSpec] | None = None,
    mode: str = "inprocess",
) -> LoadReport:
    """Drive one open-loop run and summarize it.

    ``service`` is duck-typed: anything with ``score``,
    ``rank_events``, and ``rank_events_batch`` works — in particular
    :class:`repro.serving.client.HttpServiceClient`, which turns this
    harness into an end-to-end driver for the batched HTTP server
    (pass ``mode="http"`` so the report and its bench point carry the
    path that was measured; bench-gate only compares like with like).

    The caller decides the observability setup: install a tracer
    (``with use_tracer(...)``) to get per-stage attribution and
    retained slow traces, and/or a live registry for histograms.
    Each request runs under a ``repro_loadgen_request`` root span in
    its worker thread, so with a tracer every request becomes its own
    trace.

    With a live registry the report also carries a health verdict:
    the run's headline numbers are exported as ``repro_loadgen_*``
    gauges and evaluated against ``slos`` (default:
    :func:`~repro.obs.health.default_serving_slos`), together with
    any drift monitors the service carries.
    """
    if not users:
        raise ValueError("need at least one user")
    if not events:
        raise ValueError("need at least one event")
    registry = registry if registry is not None else get_registry()
    rng = random.Random(config.seed)

    def dispatch(op: str, user_pos: int) -> None:
        user = users[user_pos]
        if op == "score":
            service.score(user, events[user_pos % len(events)])
        elif config.batch_users > 1:
            cohort = [
                users[(user_pos + offset) % len(users)]
                for offset in range(config.batch_users)
            ]
            service.rank_events_batch(cohort, events, top_k=config.top_k)
        else:
            service.rank_events(user, events, top_k=config.top_k)

    # Warm-up: sequential, unmeasured, drawn from an *offset* rng so
    # the measured schedule below is byte-identical with warmup=0.
    # No loadgen span either — the repro_loadgen_* histograms must
    # only ever contain measured traffic.
    warmup_rng = random.Random(config.seed + 1_000_003)
    for _ in range(config.warmup):
        op = "score" if warmup_rng.random() < config.score_fraction else "rank"
        dispatch(op, warmup_rng.randrange(len(users)))

    # Draw the full open-loop schedule up front: arrival offsets plus
    # per-request operation and user choice, all from one seeded rng.
    arrivals: list[float] = []
    t = rng.expovariate(config.rate)
    while t < config.duration:
        arrivals.append(t)
        t += rng.expovariate(config.rate)
    plan: list[tuple[str, int]] = []
    for _ in arrivals:
        op = "score" if rng.random() < config.score_fraction else "rank"
        plan.append((op, rng.randrange(len(users))))

    tracer = get_tracer()
    t0 = time.perf_counter()

    def now() -> float:
        return time.perf_counter() - t0

    def execute(index: int, scheduled: float, op: str, user_pos: int) -> RequestRecord:
        started = now()
        with span(
            "repro_loadgen_request", tags={"op": op}, registry=registry
        ) as root:
            dispatch(op, user_pos)
        return RequestRecord(
            index=index,
            op=op,
            scheduled=scheduled,
            started=started,
            finished=now(),
            trace_id=getattr(root, "trace_id", None),
        )

    with ThreadPoolExecutor(
        max_workers=config.workers, thread_name_prefix="repro-loadgen"
    ) as pool:
        futures = []
        for index, scheduled in enumerate(arrivals):
            delay = scheduled - now()
            if delay > 0.0:
                time.sleep(delay)
            op, user_pos = plan[index]
            futures.append(pool.submit(execute, index, scheduled, op, user_pos))
        records = tuple(future.result() for future in futures)
    wall = max(record.finished for record in records)

    latencies = [record.latency for record in records]
    services = [record.service for record in records]
    waits = [record.queue_wait for record in records]
    ops: dict[str, int] = {}
    for record in records:
        ops[record.op] = ops.get(record.op, 0) + 1
    offered = len(records) / config.duration
    achieved = len(records) / wall if wall > 0.0 else 0.0
    # Saturated when the system cannot keep up with the offered rate:
    # completions stretch past the arrival window by a margin clearly
    # beyond one in-flight request draining.
    saturated = achieved < 0.9 * offered
    attribution = tracer.attribution() if tracer is not None else []

    latency_summary = _summary(latencies)
    queue_summary = _summary(waits)
    health: HealthSnapshot | None = None
    if registry.enabled:
        _export_report_gauges(
            registry, latency_summary, queue_summary, achieved, saturated
        )
        specs = tuple(slos) if slos is not None else default_serving_slos()
        monitors = getattr(service, "monitors", None)
        drift_monitors = tuple(monitors.all) if monitors is not None else ()
        if specs or drift_monitors:
            monitor = HealthMonitor(specs, drift_monitors)
            health = monitor.evaluate(registry.snapshot())
            monitor.export(health, registry)

    return LoadReport(
        config=config,
        requests=len(records),
        wall_seconds=wall,
        offered_rps=offered,
        achieved_rps=achieved,
        latency=latency_summary,
        service=_summary(services),
        queue_wait=queue_summary,
        ops=ops,
        saturated=saturated,
        attribution=attribution,
        records=records,
        pool_size=len(events),
        warmup_excluded=config.warmup,
        health=health,
        mode=mode,
    )


def build_synthetic_service(
    seed: int = 0, pool_size: int = 500
) -> tuple[RepresentationService, list[User], list[Event]]:
    """A warmed service plus traffic entities for self-contained runs.

    Builds the small synthetic world, fits the vocabulary, and stands
    up an (untrained — load generation cares about compute shape, not
    model quality) service.  The candidate pool is enlarged to
    ``pool_size`` by replicating events under fresh ids, then fully
    warmed so steady-state traffic exercises the indexed path.
    """
    dataset = build_dataset(DataConfig.small(seed=seed))
    # Explicit id order: traffic must not depend on container order.
    users = sorted(dataset.users, key=lambda user: user.user_id)
    events = sorted(dataset.events, key=lambda event: event.event_id)
    next_id = max(event.event_id for event in events) + 1
    base = len(events)
    while len(events) < pool_size:
        source = events[len(events) % base]
        events.append(
            dataclasses.replace(
                source,
                event_id=next_id,
                title=f"{source.title} #{next_id}",
            )
        )
        next_id += 1
    events = events[:pool_size]
    encoder = DocumentEncoder.fit(users, events, min_df=1)
    model = JointUserEventModel(JointModelConfig.small(seed=seed), encoder)
    service = RepresentationService(model)
    service.warm(users, events)
    return service, users, events


def format_report(report: LoadReport) -> str:
    """Human-readable summary: rates, percentiles, attribution table."""
    lines = [
        f"requests:      {report.requests} over {report.wall_seconds:.2f} s "
        f"({', '.join(f'{op}={n}' for op, n in sorted(report.ops.items()))})",
        f"offered rate:  {report.offered_rps:.1f} req/s",
        f"achieved rate: {report.achieved_rps:.1f} req/s"
        + ("  [SATURATED]" if report.saturated else ""),
    ]
    if report.warmup_excluded:
        lines.append(
            f"warmup:        {report.warmup_excluded} requests issued, "
            "excluded from all statistics"
        )
    lines += [
        "",
        f"{'':<12} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'max ms':>9}",
    ]
    for label, stats in (
        ("latency", report.latency),
        ("service", report.service),
        ("queue wait", report.queue_wait),
    ):
        lines.append(
            f"{label:<12} {stats['p50'] * 1e3:>9.2f} {stats['p95'] * 1e3:>9.2f} "
            f"{stats['p99'] * 1e3:>9.2f} {stats['max'] * 1e3:>9.2f}"
        )
    if report.attribution:
        from repro.obs.trace import format_attribution

        lines += ["", "per-stage attribution (from traces):"]
        lines.append(format_attribution(report.attribution))
    if report.health is not None:
        lines += ["", format_health(report.health)]
    return "\n".join(lines)


def append_bench_point(
    path: str | Path, point: dict[str, Any], bench: str = "serving_loadgen"
) -> dict[str, Any]:
    """Append one trajectory point to a ``BENCH_*.json`` artifact.

    The file holds ``{"bench": ..., "points": [...]}``; this reads the
    existing document (if any), appends, rewrites, and returns the
    document so callers can report the trajectory length.
    """
    target = Path(path)
    if target.exists():
        document = json.loads(target.read_text(encoding="utf-8"))
        if document.get("bench") != bench:
            raise ValueError(
                f"{target} tracks bench {document.get('bench')!r}, not {bench!r}"
            )
    else:
        document = {"bench": bench, "points": []}
    document["points"].append(point)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def git_commit(default: str = "unknown") -> str:
    """Short hash of the checked-out commit, or ``default``.

    Benchmark points are only comparable when you know what code
    produced them; a missing git binary or a non-repo cwd degrades to
    ``default`` rather than failing the run.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    if proc.returncode != 0:
        return default
    commit = proc.stdout.strip()
    return commit if commit else default


def bench_point(
    report: Mapping[str, Any], date: str | None = None
) -> dict[str, Any]:
    """Build one ``BENCH_serving.json`` trajectory point.

    Flattens a :meth:`LoadReport.as_dict` report into the compact
    point schema the bench trajectory stores, stamped with the
    provenance the regression gate and any human reader need: the
    run date, the git commit, and the Python version.
    """
    config: Mapping[str, Any] = report.get("config", {})
    point: dict[str, Any] = {
        "date": date
        if date is not None
        else time.strftime("%Y-%m-%d", time.gmtime()),
        "commit": git_commit(),
        "python": platform.python_version(),
        "workers": config.get("workers"),
        "rate": config.get("rate"),
        "duration": config.get("duration"),
        "warmup": config.get("warmup", 0),
        "pool_size": report.get("pool_size", 0),
        "mode": report.get("mode", "inprocess"),
        "requests": report["requests"],
        "achieved_rps": round(float(report["achieved_rps"]), 2),
        "saturated": bool(report["saturated"]),
        "latency_p50_ms": round(float(report["latency"]["p50"]) * 1e3, 3),
        "latency_p95_ms": round(float(report["latency"]["p95"]) * 1e3, 3),
        "latency_p99_ms": round(float(report["latency"]["p99"]) * 1e3, 3),
    }
    health = report.get("health")
    if health is not None:
        point["health"] = {
            "healthy": bool(health["healthy"]),
            "breached": list(health["breached"]),
        }
    return point


# -- bench-regression gate -------------------------------------------------


@dataclass(frozen=True)
class GateTolerances:
    """Per-metric tolerance bands for the regression gate.

    Latency tolerances are *multipliers on the baseline median* a
    candidate may not exceed; ``achieved_rps`` is the *fraction of
    the baseline median* a candidate must still reach.  Defaults are
    deliberately loose — CI runners are noisy shared machines and a
    gate that cries wolf gets deleted; the gate exists to catch
    order-of-magnitude regressions, not 10% jitter.
    """

    latency_p50_ms: float = 3.0
    latency_p95_ms: float = 3.0
    latency_p99_ms: float = 5.0
    achieved_rps: float = 0.5

    def __post_init__(self) -> None:
        for metric in (
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "achieved_rps",
        ):
            if getattr(self, metric) <= 0.0:
                raise ValueError(f"{metric} tolerance must be > 0")


@dataclass(frozen=True)
class GateCheck:
    """One metric's comparison against the trajectory baseline."""

    metric: str
    baseline: float
    bound: float
    candidate: float
    ok: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": round(self.baseline, 4),
            "bound": round(self.bound, 4),
            "candidate": round(self.candidate, 4),
            "ok": self.ok,
        }


@dataclass(frozen=True)
class GateResult:
    """The gate's verdict over every checked metric."""

    ok: bool
    checks: tuple[GateCheck, ...]
    compared: int
    reason: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "compared": self.compared,
            "reason": self.reason,
            "checks": [check.as_dict() for check in self.checks],
        }


_GATE_LATENCY_METRICS = (
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
)


def check_bench_regression(
    document: Mapping[str, Any],
    candidate: Mapping[str, Any],
    tolerances: GateTolerances | None = None,
) -> GateResult:
    """Compare a fresh bench point against the committed trajectory.

    Baselines are the *medians* over comparable points — same
    ``workers``, ``pool_size``, and serving ``mode`` (in-process vs
    HTTP; points predating the mode field count as in-process), not
    saturated — so one historical
    outlier cannot poison the gate.  A candidate passes when every
    latency percentile stays under ``median * tolerance`` and
    throughput stays above ``median * tolerance``.  With no
    comparable history the gate passes vacuously (first run on a new
    configuration seeds the trajectory); a saturated candidate fails
    outright — saturation at a rate the trajectory handled *is* the
    regression.
    """
    tolerances = tolerances if tolerances is not None else GateTolerances()
    points = list(document.get("points", []))
    comparable = [
        point
        for point in points
        if point.get("workers") == candidate.get("workers")
        and point.get("pool_size") == candidate.get("pool_size")
        # Points predating the HTTP serving mode are in-process ones.
        and point.get("mode", "inprocess") == candidate.get("mode", "inprocess")
        and not point.get("saturated", False)
    ]
    if not comparable:
        return GateResult(
            ok=True,
            checks=(),
            compared=0,
            reason="no comparable trajectory points "
            "(matching workers/pool_size, unsaturated); gate passes vacuously",
        )
    if candidate.get("saturated", False):
        return GateResult(
            ok=False,
            checks=(),
            compared=len(comparable),
            reason="candidate run saturated at a rate the trajectory handled",
        )
    checks: list[GateCheck] = []
    for metric in _GATE_LATENCY_METRICS:
        history = [
            float(point[metric]) for point in comparable if metric in point
        ]
        if not history or metric not in candidate:
            continue
        baseline = statistics.median(history)
        bound = baseline * getattr(tolerances, metric)
        value = float(candidate[metric])
        checks.append(
            GateCheck(
                metric=metric,
                baseline=baseline,
                bound=bound,
                candidate=value,
                ok=value <= bound,
            )
        )
    history = [
        float(point["achieved_rps"])
        for point in comparable
        if "achieved_rps" in point
    ]
    if history and "achieved_rps" in candidate:
        baseline = statistics.median(history)
        bound = baseline * tolerances.achieved_rps
        value = float(candidate["achieved_rps"])
        checks.append(
            GateCheck(
                metric="achieved_rps",
                baseline=baseline,
                bound=bound,
                candidate=value,
                ok=value >= bound,
            )
        )
    return GateResult(
        ok=all(check.ok for check in checks),
        checks=tuple(checks),
        compared=len(comparable),
    )


def format_gate(result: GateResult) -> str:
    """Human-readable gate verdict table."""
    lines = [
        f"bench gate: {'PASS' if result.ok else 'FAIL'} "
        f"({result.compared} comparable trajectory points)",
    ]
    if result.reason:
        lines.append(f"  {result.reason}")
    if result.checks:
        lines += [
            "",
            f"{'metric':<18} {'baseline':>10} {'bound':>10} "
            f"{'candidate':>10}  verdict",
        ]
        for check in result.checks:
            lines.append(
                f"{check.metric:<18} {check.baseline:>10.3f} "
                f"{check.bound:>10.3f} {check.candidate:>10.3f}  "
                f"{'ok' if check.ok else 'REGRESSION'}"
            )
    return "\n".join(lines)
