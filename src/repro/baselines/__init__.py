"""Baseline semantic and popularity models the paper compares against."""

from repro.baselines.lda import LdaModel
from repro.baselines.plsa import PlsaModel
from repro.baselines.popularity import PopularityModel
from repro.baselines.tfidf import SparseVector, TfIdfVectorizer, sparse_cosine
from repro.baselines.topic_matcher import AggregatedTopicMatcher, TopicBackend

__all__ = [
    "AggregatedTopicMatcher",
    "LdaModel",
    "PlsaModel",
    "PopularityModel",
    "SparseVector",
    "TfIdfVectorizer",
    "TopicBackend",
    "sparse_cosine",
]
