"""Popularity / recency scoring baselines.

The weakest sensible recommenders: rank events by how many people have
joined so far (optionally time-decayed), or users' propensity to join
anything.  They anchor the low end of every comparison and expose the
transiency problem — a brand-new event has no popularity to rank by.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.entities import Event, Impression

__all__ = ["PopularityModel"]


class PopularityModel:
    """Event-popularity and user-propensity scores from history."""

    def __init__(self, recency_halflife_hours: float | None = None):
        self.recency_halflife_hours = recency_halflife_hours
        self._event_joins: dict[int, float] = {}
        self._user_joins: dict[int, int] = {}
        self._user_impressions: dict[int, int] = {}
        self._global_rate: float = 0.0
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, history: Sequence[Impression]) -> "PopularityModel":
        """Accumulate join counts from historical impressions."""
        if not history:
            raise ValueError("need history to fit")
        reference_time = max(impression.shown_at for impression in history)
        positives = 0
        for impression in history:
            self._user_impressions[impression.user_id] = (
                self._user_impressions.get(impression.user_id, 0) + 1
            )
            if not impression.participated:
                continue
            positives += 1
            weight = 1.0
            if self.recency_halflife_hours is not None:
                age = reference_time - impression.shown_at
                weight = 0.5 ** (age / self.recency_halflife_hours)
            self._event_joins[impression.event_id] = (
                self._event_joins.get(impression.event_id, 0.0) + weight
            )
            self._user_joins[impression.user_id] = (
                self._user_joins.get(impression.user_id, 0) + 1
            )
        self._global_rate = positives / len(history)
        self._fitted = True
        return self

    def event_popularity(self, event: Event) -> float:
        """Log-scaled join count; zero for cold (new) events."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        return float(np.log1p(self._event_joins.get(event.event_id, 0.0)))

    def user_propensity(self, user_id: int) -> float:
        """Smoothed per-user join rate."""
        if not self._fitted:
            raise RuntimeError("model is not fitted")
        joins = self._user_joins.get(user_id, 0)
        impressions = self._user_impressions.get(user_id, 0)
        # Beta-binomial shrinkage toward the global rate.
        return (joins + 5.0 * self._global_rate) / (impressions + 5.0)

    def score(self, user_id: int, event: Event) -> float:
        """Popularity × propensity ranking score."""
        return self.event_popularity(event) + self.user_propensity(user_id)

    def score_pairs(self, pairs: Sequence[tuple[int, Event]]) -> np.ndarray:
        return np.asarray(
            [self.score(user_id, event) for user_id, event in pairs]
        )
