"""Probabilistic Latent Semantic Analysis via EM.

The second bag-of-words semantic model the paper contrasts against
(Hofmann, SIGIR '99).  Topics are word multinomials P(w|z); each
training document has a mixture P(z|d) fit by EM; unseen documents are
folded in by re-running the E/M update with topics frozen.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.normalize import split_words

__all__ = ["PlsaModel"]


class PlsaModel:
    """EM-trained PLSA over raw text documents."""

    def __init__(
        self,
        num_topics: int = 12,
        num_iterations: int = 50,
        min_df: int = 2,
        smoothing: float = 1.0e-3,
        seed: int = 0,
    ):
        if num_topics < 2:
            raise ValueError(f"num_topics must be >= 2, got {num_topics}")
        self.num_topics = num_topics
        self.num_iterations = num_iterations
        self.min_df = min_df
        self.smoothing = smoothing
        self.seed = seed
        self._word_to_id: dict[str, int] | None = None
        self.word_given_topic: np.ndarray | None = None  # (topics, vocab)
        self.log_likelihoods: list[float] = []

    @property
    def is_fitted(self) -> bool:
        return self.word_given_topic is not None

    def _count_matrix(
        self, documents: Sequence[str], build_vocab: bool
    ) -> np.ndarray:
        tokenized = [split_words(document) for document in documents]
        if build_vocab:
            df: dict[str, int] = {}
            for words in tokenized:
                for word in set(words):
                    df[word] = df.get(word, 0) + 1
            vocabulary = sorted(
                word for word, count in df.items() if count >= self.min_df
            )
            if not vocabulary:
                raise ValueError("vocabulary empty after DF filtering")
            self._word_to_id = {
                word: index for index, word in enumerate(vocabulary)
            }
        if self._word_to_id is None:
            raise RuntimeError("model is not fitted")
        counts = np.zeros((len(documents), len(self._word_to_id)))
        for row, words in enumerate(tokenized):
            for word in words:
                column = self._word_to_id.get(word)
                if column is not None:
                    counts[row, column] += 1.0
        return counts

    def _em(
        self,
        counts: np.ndarray,
        word_given_topic: np.ndarray,
        topic_given_doc: np.ndarray,
        num_iterations: int,
        update_topics: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run EM; optionally freeze the topic-word distributions."""
        eps = 1.0e-12
        self.log_likelihoods = []
        for _ in range(num_iterations):
            # E-step folded into M-step accumulators:
            # P(z|d,w) ∝ P(w|z) P(z|d)
            mixture = topic_given_doc @ word_given_topic  # (docs, vocab)
            mixture = np.maximum(mixture, eps)
            ratio = counts / mixture  # (docs, vocab)
            # New topic_given_doc ∝ Σ_w counts · P(z|d,w)
            new_topic_doc = topic_given_doc * (ratio @ word_given_topic.T)
            new_topic_doc += self.smoothing
            new_topic_doc /= new_topic_doc.sum(axis=1, keepdims=True)
            if update_topics:
                new_word_topic = word_given_topic * (topic_given_doc.T @ ratio)
                new_word_topic += self.smoothing
                new_word_topic /= new_word_topic.sum(axis=1, keepdims=True)
                word_given_topic = new_word_topic
            topic_given_doc = new_topic_doc
            log_likelihood = float(
                (counts * np.log(np.maximum(topic_given_doc @ word_given_topic, eps))).sum()
            )
            self.log_likelihoods.append(log_likelihood)
        return word_given_topic, topic_given_doc

    def fit(self, documents: Sequence[str]) -> "PlsaModel":
        """Fit topic-word distributions on the corpus."""
        if not documents:
            raise ValueError("cannot fit on an empty corpus")
        counts = self._count_matrix(documents, build_vocab=True)
        rng = np.random.default_rng(self.seed)
        word_given_topic = rng.dirichlet(
            np.ones(counts.shape[1]), size=self.num_topics
        )
        topic_given_doc = rng.dirichlet(
            np.ones(self.num_topics), size=counts.shape[0]
        )
        self.word_given_topic, _ = self._em(
            counts,
            word_given_topic,
            topic_given_doc,
            self.num_iterations,
            update_topics=True,
        )
        return self

    def infer(self, document: str, num_iterations: int = 30) -> np.ndarray:
        """Fold-in: topic mixture of an unseen document."""
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        counts = self._count_matrix([document], build_vocab=False)
        if counts.sum() == 0:
            return np.full(self.num_topics, 1.0 / self.num_topics)
        rng = np.random.default_rng(self.seed + 1)
        topic_given_doc = rng.dirichlet(np.ones(self.num_topics), size=1)
        _, topic_given_doc = self._em(
            counts,
            self.word_given_topic,
            topic_given_doc,
            num_iterations,
            update_topics=False,
        )
        return topic_given_doc[0]
