"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

One of the two bag-of-words semantic models the paper contrasts its
CNN representation against (Sections 1-2): topics are word
multinomials, documents are topic mixtures, and — critically — a user
can only be embedded in the same space by *aggregating documents of
the same type*, the homogeneity restriction the paper identifies as
an information bottleneck.

This is a compact, dependency-free collapsed Gibbs implementation
(Griffiths & Steyvers); adequate for corpora of a few thousand short
documents.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.text.normalize import split_words

__all__ = ["LdaModel"]


class LdaModel:
    """Collapsed-Gibbs LDA over raw text documents."""

    def __init__(
        self,
        num_topics: int = 12,
        alpha: float = 0.1,
        beta: float = 0.01,
        num_iterations: int = 100,
        min_df: int = 2,
        seed: int = 0,
    ):
        if num_topics < 2:
            raise ValueError(f"num_topics must be >= 2, got {num_topics}")
        if num_iterations < 1:
            raise ValueError("num_iterations must be >= 1")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.num_iterations = num_iterations
        self.min_df = min_df
        self.seed = seed
        self._word_to_id: dict[str, int] | None = None
        self.topic_word: np.ndarray | None = None  # (topics, vocab) counts
        self.topic_totals: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.topic_word is not None

    @property
    def vocabulary_size(self) -> int:
        return len(self._word_to_id) if self._word_to_id else 0

    def _encode(self, document: str) -> np.ndarray:
        if self._word_to_id is None:
            raise RuntimeError("model is not fitted")
        ids = [
            self._word_to_id[word]
            for word in split_words(document)
            if word in self._word_to_id
        ]
        return np.asarray(ids, dtype=np.int64)

    def fit(self, documents: Sequence[str]) -> "LdaModel":
        """Run collapsed Gibbs sampling over the corpus."""
        if not documents:
            raise ValueError("cannot fit on an empty corpus")
        # Build vocabulary with DF filter.
        df: dict[str, int] = {}
        tokenized = [split_words(document) for document in documents]
        for words in tokenized:
            for word in set(words):
                df[word] = df.get(word, 0) + 1
        vocabulary = sorted(word for word, count in df.items() if count >= self.min_df)
        if not vocabulary:
            raise ValueError("vocabulary empty after DF filtering; lower min_df")
        self._word_to_id = {word: index for index, word in enumerate(vocabulary)}

        doc_words = [
            np.asarray(
                [self._word_to_id[w] for w in words if w in self._word_to_id],
                dtype=np.int64,
            )
            for words in tokenized
        ]
        rng = np.random.default_rng(self.seed)
        num_docs = len(doc_words)
        vocab_size = len(vocabulary)
        topic_word = np.zeros((self.num_topics, vocab_size), dtype=np.float64)
        doc_topic = np.zeros((num_docs, self.num_topics), dtype=np.float64)
        topic_totals = np.zeros(self.num_topics, dtype=np.float64)
        assignments = [
            rng.integers(self.num_topics, size=words.size) for words in doc_words
        ]
        for doc, (words, topics) in enumerate(zip(doc_words, assignments)):
            for word, topic in zip(words, topics):
                topic_word[topic, word] += 1
                doc_topic[doc, topic] += 1
                topic_totals[topic] += 1

        for _ in range(self.num_iterations):
            for doc, words in enumerate(doc_words):
                topics = assignments[doc]
                for position, word in enumerate(words):
                    old_topic = topics[position]
                    topic_word[old_topic, word] -= 1
                    doc_topic[doc, old_topic] -= 1
                    topic_totals[old_topic] -= 1
                    weights = (
                        (topic_word[:, word] + self.beta)
                        / (topic_totals + self.beta * vocab_size)
                        * (doc_topic[doc] + self.alpha)
                    )
                    weights /= weights.sum()
                    new_topic = int(rng.choice(self.num_topics, p=weights))
                    topics[position] = new_topic
                    topic_word[new_topic, word] += 1
                    doc_topic[doc, new_topic] += 1
                    topic_totals[new_topic] += 1
        self.topic_word = topic_word
        self.topic_totals = topic_totals
        return self

    def infer(self, document: str, num_iterations: int = 30) -> np.ndarray:
        """Fold in one document: posterior topic mixture."""
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        words = self._encode(document)
        if words.size == 0:
            return np.full(self.num_topics, 1.0 / self.num_topics)
        rng = np.random.default_rng(self.seed + 1)
        vocab_size = self.topic_word.shape[1]
        word_prob = (self.topic_word + self.beta) / (
            self.topic_totals[:, None] + self.beta * vocab_size
        )
        counts = np.zeros(self.num_topics)
        topics = rng.integers(self.num_topics, size=words.size)
        for topic in topics:
            counts[topic] += 1
        for _ in range(num_iterations):
            for position, word in enumerate(words):
                counts[topics[position]] -= 1
                weights = word_prob[:, word] * (counts + self.alpha)
                weights /= weights.sum()
                new_topic = int(rng.choice(self.num_topics, p=weights))
                topics[position] = new_topic
                counts[new_topic] += 1
        mixture = counts + self.alpha
        return mixture / mixture.sum()

    def top_words(self, topic: int, count: int = 10) -> list[str]:
        """Most probable words of a topic (for inspection)."""
        if not self.is_fitted or self._word_to_id is None:
            raise RuntimeError("model is not fitted")
        id_to_word = {index: word for word, index in self._word_to_id.items()}
        order = np.argsort(-self.topic_word[topic])[:count]
        return [id_to_word[int(index)] for index in order]
