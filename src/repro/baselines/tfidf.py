"""TF-IDF bag-of-words matching — the retrieval-model baseline.

Section 1 positions "relatively simple retrieval models or semantic
models such as keyword/tag matching" as what existing event
recommenders fall back to.  This module implements that baseline: a
word-level TF-IDF vectorizer with sparse dict vectors and cosine
scoring.  It doubles as the keyword-match base feature inside the
combiner's baseline feature set.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.text.normalize import split_words

__all__ = ["SparseVector", "TfIdfVectorizer", "sparse_cosine"]

SparseVector = dict[str, float]


def sparse_cosine(left: SparseVector, right: SparseVector) -> float:
    """Cosine similarity of two sparse word-weight vectors."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = sum(weight * right.get(word, 0.0) for word, weight in left.items())
    if dot == 0.0:
        return 0.0
    norm_left = math.sqrt(sum(weight * weight for weight in left.values()))
    norm_right = math.sqrt(sum(weight * weight for weight in right.values()))
    return dot / (norm_left * norm_right)


class TfIdfVectorizer:
    """Word-level TF-IDF with smoothed logarithmic IDF.

    IDF is fit on a reference corpus (typically the training events);
    out-of-corpus words at transform time receive the maximum IDF, so
    rare novel words stay discriminative.
    """

    def __init__(self, min_df: int = 1, sublinear_tf: bool = True):
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.min_df = min_df
        self.sublinear_tf = sublinear_tf
        self._idf: dict[str, float] | None = None
        self._default_idf: float = 0.0
        self.num_documents: int = 0

    @property
    def is_fitted(self) -> bool:
        return self._idf is not None

    def fit(self, documents: Iterable[str]) -> "TfIdfVectorizer":
        """Compute IDF weights from a corpus of raw texts."""
        df: Counter[str] = Counter()
        num_documents = 0
        for document in documents:
            num_documents += 1
            df.update(set(split_words(document)))
        if num_documents == 0:
            raise ValueError("cannot fit on an empty corpus")
        self.num_documents = num_documents
        self._idf = {
            word: math.log((1 + num_documents) / (1 + count)) + 1.0
            for word, count in df.items()
            if count >= self.min_df
        }
        self._default_idf = math.log(1 + num_documents) + 1.0
        return self

    def transform(self, document: str) -> SparseVector:
        """TF-IDF vector of one raw text."""
        if self._idf is None:
            raise RuntimeError("vectorizer is not fitted")
        counts = Counter(split_words(document))
        vector: SparseVector = {}
        for word, count in counts.items():
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            vector[word] = tf * self._idf.get(word, self._default_idf)
        return vector

    def similarity(self, document_a: str, document_b: str) -> float:
        """Cosine TF-IDF similarity of two raw texts."""
        return sparse_cosine(self.transform(document_a), self.transform(document_b))
