"""User-as-aggregate-of-items topic matching (the criticized baseline).

Sections 1-2: with bag-of-words topic models, "in order to project
user and item into the same topic distribution space, a user has to be
represented by (an aggregate of) the same type of items", e.g.
aggregated attended events.  This module implements exactly that
scheme over an LDA or PLSA backend, so the benches can demonstrate the
information bottleneck the paper's joint model removes: users with no
(or few) attended events get an uninformative uniform mixture.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro.entities import Event, Impression
from repro.nn.cosine import exact_cosine

__all__ = ["TopicBackend", "AggregatedTopicMatcher"]


class TopicBackend(Protocol):
    """Anything with LDA/PLSA-style fit/infer over raw texts."""

    num_topics: int

    def fit(self, documents: Sequence[str]) -> "TopicBackend": ...

    def infer(self, document: str) -> np.ndarray: ...


class AggregatedTopicMatcher:
    """Score (user, event) by cosine of topic mixtures, where the user
    mixture is the mean of mixtures of events they attended."""

    def __init__(self, backend: TopicBackend):
        self.backend = backend
        self._event_mixtures: dict[int, np.ndarray] = {}
        self._user_mixtures: dict[int, np.ndarray] = {}
        self._uniform: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._uniform is not None

    def fit(
        self,
        events: Sequence[Event],
        history: Sequence[Impression],
    ) -> "AggregatedTopicMatcher":
        """Fit the topic backend on event texts, then aggregate user
        mixtures from historical participations."""
        if not events:
            raise ValueError("need events to fit the topic backend")
        self.backend.fit([event.text_document() for event in events])
        self._uniform = np.full(
            self.backend.num_topics, 1.0 / self.backend.num_topics
        )
        self._event_mixtures = {
            event.event_id: self.backend.infer(event.text_document())
            for event in events
        }
        attended: dict[int, list[np.ndarray]] = {}
        for impression in history:
            if not impression.participated:
                continue
            mixture = self._event_mixtures.get(impression.event_id)
            if mixture is not None:
                attended.setdefault(impression.user_id, []).append(mixture)
        self._user_mixtures = {
            user_id: np.mean(mixtures, axis=0)
            for user_id, mixtures in attended.items()
        }
        return self

    def user_mixture(self, user_id: int) -> np.ndarray:
        """Aggregated user mixture; uniform when history is empty —
        the cold-start failure mode the paper highlights."""
        if self._uniform is None:
            raise RuntimeError("matcher is not fitted")
        return self._user_mixtures.get(user_id, self._uniform)

    def event_mixture(self, event: Event) -> np.ndarray:
        cached = self._event_mixtures.get(event.event_id)
        if cached is not None:
            return cached
        return self.backend.infer(event.text_document())

    def coverage(self) -> float:
        """Fraction of seen users with a non-degenerate mixture."""
        return float(len(self._user_mixtures))

    def score(self, user_id: int, event: Event) -> float:
        """Cosine topic similarity, the matcher's ranking score."""
        return exact_cosine(self.user_mixture(user_id), self.event_mixture(event))

    def score_pairs(
        self, pairs: Sequence[tuple[int, Event]]
    ) -> np.ndarray:
        return np.asarray(
            [self.score(user_id, event) for user_id, event in pairs]
        )
