"""Representation features for the combiner (Section 4).

"We can include the similarity score (s_θ(u,e)) as a numerical
feature.  We can also include the representation vectors (v_u and
v_e) to allow latent topic interaction in the projected space."

:class:`RepresentationFeatureProvider` holds pre-computed vectors
(mirroring the production precompute-and-cache design) and emits, per
impression, the concatenated ``[v_u, v_e]`` block with an optional
cosine-score column.  Table 1's four integration settings are spanned
by toggling ``include_vectors`` / ``include_score``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.model import JointUserEventModel
from repro.entities import Event, User
from repro.nn.cosine import pair_cosine

__all__ = ["RepresentationFeatureProvider"]


class RepresentationFeatureProvider:
    """Per-entity representation vectors, exposed as combiner features."""

    def __init__(
        self,
        user_vectors: dict[int, np.ndarray],
        event_vectors: dict[int, np.ndarray],
        include_vectors: bool = True,
        include_score: bool = False,
    ):
        if not user_vectors or not event_vectors:
            raise ValueError("need at least one user and one event vector")
        if not include_vectors and not include_score:
            raise ValueError("provider must emit vectors, score, or both")
        self.user_vectors = user_vectors
        self.event_vectors = event_vectors
        self.include_vectors = include_vectors
        self.include_score = include_score
        self.dim = next(iter(user_vectors.values())).shape[0]
        event_dim = next(iter(event_vectors.values())).shape[0]
        if event_dim != self.dim:
            raise ValueError(
                f"user dim {self.dim} != event dim {event_dim}"
            )

    @classmethod
    def from_model(
        cls,
        model: JointUserEventModel,
        users: Sequence[User],
        events: Sequence[Event],
        include_vectors: bool = True,
        include_score: bool = False,
    ) -> "RepresentationFeatureProvider":
        """Pre-compute all vectors with the trained joint model."""
        encoded_users = [model.encoder.encode_user(user) for user in users]
        encoded_events = [model.encoder.encode_event(event) for event in events]
        user_matrix = model.encode_users(encoded_users)
        event_matrix = model.encode_events(encoded_events)
        return cls(
            user_vectors={
                user.user_id: vector
                for user, vector in zip(users, user_matrix)
            },
            event_vectors={
                event.event_id: vector
                for event, vector in zip(events, event_matrix)
            },
            include_vectors=include_vectors,
            include_score=include_score,
        )

    def feature_names(self) -> list[str]:
        names = []
        if self.include_vectors:
            names.extend(f"rep_user_{i}" for i in range(self.dim))
            names.extend(f"rep_event_{i}" for i in range(self.dim))
        if self.include_score:
            names.append("rep_similarity")
        return names

    @property
    def num_features(self) -> int:
        return len(self.feature_names())

    def similarity(self, user_id: int, event_id: int) -> float:
        """Cosine of the cached vectors, s_θ(u, e).

        Routed through the shared training-time kernel: a local
        reimplementation here carried the epsilon *outside* the norm
        product, so the ``rep_similarity`` feature the combiner
        trained on differed from the model head (the same class of
        divergence PR 3 fixed on the serving path — now RPR101).
        """
        return pair_cosine(
            self.user_vectors[user_id], self.event_vectors[event_id]
        )

    def compute_row(self, user_id: int, event_id: int) -> np.ndarray:
        parts = []
        if self.include_vectors:
            parts.append(self.user_vectors[user_id])
            parts.append(self.event_vectors[event_id])
        if self.include_score:
            parts.append(np.array([self.similarity(user_id, event_id)]))
        return np.concatenate(parts)
