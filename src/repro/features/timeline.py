"""Causally correct time-replay of the impression log.

Several combiner features are *time-varying*: how many of the user's
friends have already joined this event, how popular the event is right
now.  In production these are read from live counters; offline they
must be reconstructed so that the feature at time *t* only reflects
outcomes strictly before *t* — otherwise the combiner trains on leaked
future labels and the evaluation is meaningless (this is why the paper
insists on its date-based partition for "behavior statistics
features", Section 5.1).

:class:`TimelineReplayer` walks the full time-sorted log once; when it
reaches an impression belonging to the target set it yields the
current :class:`TimelineState` *before* applying that impression's own
outcome.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.entities import Impression

__all__ = ["TimelineState", "TimelineReplayer"]


@dataclass
class TimelineState:
    """Mutable counters describing the world at a point in time."""

    event_attendees: dict[int, set[int]] = field(default_factory=dict)
    event_clickers: dict[int, set[int]] = field(default_factory=dict)
    event_impressions: dict[int, int] = field(default_factory=dict)
    user_joins: dict[int, int] = field(default_factory=dict)
    user_impressions: dict[int, int] = field(default_factory=dict)

    def attendees_of(self, event_id: int) -> set[int]:
        return self.event_attendees.get(event_id, _EMPTY_SET)

    def clickers_of(self, event_id: int) -> set[int]:
        return self.event_clickers.get(event_id, _EMPTY_SET)

    def apply(self, impression: Impression) -> None:
        """Fold one observed outcome into the counters."""
        self.event_impressions[impression.event_id] = (
            self.event_impressions.get(impression.event_id, 0) + 1
        )
        self.user_impressions[impression.user_id] = (
            self.user_impressions.get(impression.user_id, 0) + 1
        )
        if impression.clicked:
            self.event_clickers.setdefault(impression.event_id, set()).add(
                impression.user_id
            )
        if impression.participated:
            self.event_attendees.setdefault(impression.event_id, set()).add(
                impression.user_id
            )
            self.user_joins[impression.user_id] = (
                self.user_joins.get(impression.user_id, 0) + 1
            )


_EMPTY_SET: frozenset[int] = frozenset()


class TimelineReplayer:
    """Replays a time-sorted log, yielding pre-outcome state snapshots.

    Args:
        log: the complete impression log covering (at least) the time
            range of any target set, sorted by ``shown_at``.
    """

    def __init__(self, log: Sequence[Impression]):
        self.log = sorted(log, key=lambda imp: imp.shown_at)

    def replay(
        self, targets: Sequence[Impression]
    ) -> Iterator[tuple[int, Impression, TimelineState]]:
        """Yield ``(target_row, impression, state)`` in time order.

        ``state`` is live (mutated as the replay advances) — consumers
        must read everything they need before the next iteration.
        Every target must appear in the log.
        """
        remaining: dict[Impression, list[int]] = {}
        for row, impression in enumerate(targets):
            remaining.setdefault(impression, []).append(row)
        state = TimelineState()
        matched = 0
        for impression in self.log:
            rows = remaining.get(impression)
            if rows:
                row = rows.pop(0)
                if not rows:
                    del remaining[impression]
                matched += 1
                yield row, impression, state
            state.apply(impression)
        if remaining:
            missing = len(targets) - matched
            raise ValueError(
                f"{missing} target impression(s) not found in the log; "
                f"targets must be drawn from the replayed log"
            )
