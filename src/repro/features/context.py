"""Shared lookup context for feature extraction.

Pre-computes everything that is pure function of the entity corpus —
friend sets, word sets, TF-IDF vectors, category indices — so the
per-impression extractors stay cheap.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.tfidf import SparseVector, TfIdfVectorizer, sparse_cosine
from repro.datagen.users import AGE_BUCKETS, GENDERS
from repro.entities import Event, User
from repro.text.normalize import split_words

__all__ = ["FeatureContext"]


class FeatureContext:
    """Entity lookups shared by every feature extractor."""

    def __init__(self, users: Sequence[User], events: Sequence[Event]):
        if not users or not events:
            raise ValueError("context needs users and events")
        self.users_by_id = {user.user_id: user for user in users}
        self.events_by_id = {event.event_id: event for event in events}
        self.friend_sets = {
            user.user_id: set(user.friend_ids) for user in users
        }
        self.event_words = {
            event.event_id: set(split_words(event.text_document()))
            for event in events
        }
        self.user_keywords = {
            user.user_id: set(
                split_words(" ".join([*user.keywords, *user.page_titles]))
            )
            for user in users
        }
        categories = sorted({event.category for event in events})
        self.category_index = {
            category: index for index, category in enumerate(categories)
        }
        self.age_index = {bucket: i for i, bucket in enumerate(AGE_BUCKETS)}
        self.gender_index = {gender: i for i, gender in enumerate(GENDERS)}

        # TF-IDF fitted on event texts: the retrieval-style matcher
        # available to the production baseline.
        self.tfidf = TfIdfVectorizer(min_df=1).fit(
            event.text_document() for event in events
        )
        self._event_tfidf: dict[int, SparseVector] = {
            event.event_id: self.tfidf.transform(event.text_document())
            for event in events
        }
        self._user_tfidf: dict[int, SparseVector] = {
            user.user_id: self.tfidf.transform(user.text_document())
            for user in users
        }

    def user(self, user_id: int) -> User:
        return self.users_by_id[user_id]

    def event(self, event_id: int) -> Event:
        return self.events_by_id[event_id]

    def distance(self, user: User, event: Event) -> float:
        delta = np.asarray(user.home_location) - np.asarray(event.location)
        return float(np.sqrt((delta * delta).sum()))

    def tfidf_match(self, user_id: int, event_id: int) -> float:
        """TF-IDF cosine between user document and event document."""
        return sparse_cosine(
            self._user_tfidf[user_id], self._event_tfidf[event_id]
        )

    def keyword_overlap(self, user_id: int, event_id: int) -> tuple[int, float]:
        """Raw and Jaccard-style keyword overlap counts."""
        user_words = self.user_keywords[user_id]
        event_words = self.event_words[event_id]
        overlap = len(user_words & event_words)
        denominator = min(len(user_words), len(event_words))
        return overlap, overlap / denominator if denominator else 0.0

    def category_id(self, category: str) -> int:
        """Stable integer id for a category (unknown → -1)."""
        return self.category_index.get(category, -1)
