"""Assembly of combiner feature matrices for each experiment setting.

The paper's experiments are defined by which feature groups enter the
GBDT combiner:

* Table 1: {Rep only, Baseline, Baseline+Rep, Baseline+Rep+Score}
* Table 2: {Base (No-CF), Base+CF, Base+Rep, All}

:class:`FeatureSetConfig` names those settings;
:class:`CombinerFeaturePipeline` fits the group extractors on the
history split and materializes ``(X, y, names)`` for any target split
via one causally correct timeline replay.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.entities import Impression
from repro.features.base_features import BaseFeatureExtractor
from repro.features.cf_features import CFFeatureExtractor
from repro.features.context import FeatureContext
from repro.features.rep_features import RepresentationFeatureProvider
from repro.features.timeline import TimelineReplayer

__all__ = ["FeatureSetConfig", "CombinerFeaturePipeline"]


@dataclass(frozen=True)
class FeatureSetConfig:
    """Which feature groups feed the combiner."""

    include_base: bool = True
    include_cf: bool = True
    include_representation: bool = False
    include_similarity_score: bool = False
    name: str = "custom"

    def __post_init__(self):
        if not (
            self.include_base
            or self.include_cf
            or self.include_representation
            or self.include_similarity_score
        ):
            raise ValueError("at least one feature group must be enabled")

    # Table 1 settings -------------------------------------------------

    @classmethod
    def representation_only(cls) -> "FeatureSetConfig":
        """Row 1 of Table 1: representation vectors alone."""
        return cls(
            include_base=False,
            include_cf=False,
            include_representation=True,
            name="Rep. Vectors",
        )

    @classmethod
    def baseline(cls) -> "FeatureSetConfig":
        """Row 2 of Table 1 / row 2 of Table 2: full production baseline."""
        return cls(name="Baseline")

    @classmethod
    def baseline_plus_vectors(cls) -> "FeatureSetConfig":
        """Row 3 of Table 1: baseline + representation vectors."""
        return cls(include_representation=True, name="Add Rep. Vectors")

    @classmethod
    def baseline_plus_vectors_and_score(cls) -> "FeatureSetConfig":
        """Row 4 of Table 1: baseline + vectors + similarity score."""
        return cls(
            include_representation=True,
            include_similarity_score=True,
            name="Add Score and Rep.",
        )

    # Table 2 settings -------------------------------------------------

    @classmethod
    def base_no_cf(cls) -> "FeatureSetConfig":
        """Row 1 of Table 2: base features without CF."""
        return cls(include_cf=False, name="Base Features (No-CF)")

    @classmethod
    def base_plus_rep(cls) -> "FeatureSetConfig":
        """Row 3 of Table 2: base + representation, no CF."""
        return cls(
            include_cf=False,
            include_representation=True,
            name="Base and Rep. Features",
        )

    @classmethod
    def all_features(cls) -> "FeatureSetConfig":
        """Row 4 of Table 2: everything."""
        return cls(
            include_representation=True,
            include_similarity_score=True,
            name="All Features",
        )


class CombinerFeaturePipeline:
    """Fits feature extractors and builds per-split design matrices."""

    def __init__(
        self,
        context: FeatureContext,
        config: FeatureSetConfig,
        representation: RepresentationFeatureProvider | None = None,
    ):
        needs_rep = config.include_representation or config.include_similarity_score
        if needs_rep and representation is None:
            raise ValueError(
                f"feature set {config.name!r} needs a representation provider"
            )
        self.context = context
        self.config = config
        self.base = BaseFeatureExtractor(context) if config.include_base else None
        self.cf = CFFeatureExtractor(context) if config.include_cf else None
        self.representation = representation if needs_rep else None
        if self.representation is not None:
            # Re-wrap so vector/score inclusion follows this config.
            self.representation = RepresentationFeatureProvider(
                representation.user_vectors,
                representation.event_vectors,
                include_vectors=config.include_representation,
                include_score=config.include_similarity_score,
            )
        self._fitted = False

    def feature_names(self) -> list[str]:
        names: list[str] = []
        if self.base is not None:
            names.extend(self.base.feature_names())
        if self.cf is not None:
            names.extend(self.cf.feature_names())
        if self.representation is not None:
            names.extend(self.representation.feature_names())
        return names

    @property
    def num_features(self) -> int:
        return len(self.feature_names())

    def fit(self, history: Sequence[Impression]) -> "CombinerFeaturePipeline":
        """Fit group extractors on the history (pre-target) split."""
        if not history:
            raise ValueError("cannot fit on empty history")
        if self.base is not None:
            self.base.fit(history)
        if self.cf is not None:
            self.cf.fit(history)
        self._fitted = True
        return self

    def build(
        self,
        targets: Sequence[Impression],
        log: Sequence[Impression],
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Materialize the design matrix for *targets*.

        Args:
            targets: impressions to featurize (one row each, in order).
            log: the full time-sorted impression log that contains the
                targets; live counters are replayed over it.

        Returns:
            ``(X, y, feature_names)``.
        """
        if not self._fitted:
            raise RuntimeError("pipeline is not fitted")
        if not targets:
            raise ValueError("no target impressions")
        num_rows = len(targets)
        matrix = np.zeros((num_rows, self.num_features))
        labels = np.fromiter(
            (1.0 if imp.participated else 0.0 for imp in targets),
            dtype=np.float64,
            count=num_rows,
        )
        replayer = TimelineReplayer(log)
        for row, impression, state in replayer.replay(targets):
            parts = []
            if self.base is not None:
                parts.append(self.base.compute_row(impression, state))
            if self.cf is not None:
                parts.append(self.cf.compute_row(impression, state))
            if self.representation is not None:
                parts.append(
                    self.representation.compute_row(
                        impression.user_id, impression.event_id
                    )
                )
            matrix[row] = np.concatenate(parts)
        return matrix, labels, self.feature_names()
