"""Combiner feature pipeline: base, CF, and representation features."""

from repro.features.base_features import BaseFeatureExtractor
from repro.features.cf_features import CFFeatureExtractor
from repro.features.context import FeatureContext
from repro.features.pipeline import CombinerFeaturePipeline, FeatureSetConfig
from repro.features.rep_features import RepresentationFeatureProvider
from repro.features.timeline import TimelineReplayer, TimelineState

__all__ = [
    "BaseFeatureExtractor",
    "CFFeatureExtractor",
    "CombinerFeaturePipeline",
    "FeatureContext",
    "FeatureSetConfig",
    "RepresentationFeatureProvider",
    "TimelineReplayer",
    "TimelineState",
]
