"""Collaborative-filtering combiner features (the "CF" set of Table 2).

Section 5.1: the baseline "includes multiple collaborative filtering
features based on different types of user feedback (e.g. like/dislike,
join, interested in) and social connections (e.g., friend,
organizer/performer, and events)".  Here:

* **social propagation at impression time** — friends already joined /
  clicked this event (from the timeline replay);
* **user-user memory-based CF** — cosine similarity over co-join and
  co-click incidence from history, scored against the event's current
  attendee/clicker set;
* **organizer affinity** — the user's historical joins/clicks on this
  host's previous events;
* **friend-category propensity** — fraction of the user's friends who
  joined this category in history.

These features are strong where history exists and cold where it does
not — the generalization gap the representation features close.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.entities import Impression
from repro.features.context import FeatureContext
from repro.features.timeline import TimelineState

__all__ = ["CFFeatureExtractor"]


class _CoOccurrence:
    """Symmetric user-user cosine similarity from co-feedback counts."""

    def __init__(self):
        self._pair_counts: dict[tuple[int, int], int] = {}
        self._user_counts: dict[int, int] = {}
        self.neighbors: dict[int, dict[int, float]] = {}

    def add_group(self, users: list[int]) -> None:
        """Record that all *users* gave the same feedback on one event."""
        for user in users:
            self._user_counts[user] = self._user_counts.get(user, 0) + 1
        for i, user_a in enumerate(users):
            for user_b in users[i + 1 :]:
                key = (user_a, user_b) if user_a < user_b else (user_b, user_a)
                self._pair_counts[key] = self._pair_counts.get(key, 0) + 1

    def finalize(self) -> None:
        """Convert co-counts into per-user cosine neighbor maps."""
        self.neighbors = {}
        for (user_a, user_b), count in self._pair_counts.items():
            denom = np.sqrt(
                self._user_counts[user_a] * self._user_counts[user_b]
            )
            similarity = count / denom if denom else 0.0
            self.neighbors.setdefault(user_a, {})[user_b] = similarity
            self.neighbors.setdefault(user_b, {})[user_a] = similarity

    def score_against(self, user_id: int, others: set[int]) -> float:
        """Σ similarity(user, v) over v in *others*."""
        sims = self.neighbors.get(user_id)
        if not sims:
            return 0.0
        if len(others) < len(sims):
            return sum(sims.get(other, 0.0) for other in others)
        return sum(value for other, value in sims.items() if other in others)

    def neighbor_count(self, user_id: int) -> int:
        return len(self.neighbors.get(user_id, ()))


class CFFeatureExtractor:
    """Fit CF structures on history; compute per-impression features."""

    def __init__(self, context: FeatureContext):
        self.context = context
        self._fitted = False
        self._join_cf = _CoOccurrence()
        self._click_cf = _CoOccurrence()
        self._host_joins: dict[tuple[int, int], int] = {}
        self._host_clicks: dict[tuple[int, int], int] = {}
        self._user_category_joins: dict[tuple[int, str], int] = {}

    def feature_names(self) -> list[str]:
        return [
            "cf_friends_joined_now",
            "cf_friends_joined_frac",
            "cf_friends_clicked_now",
            "cf_user_user_join_score",
            "cf_user_user_click_score",
            "cf_join_neighbor_count",
            "cf_host_prior_joins",
            "cf_host_prior_clicks",
            "cf_friend_category_rate",
        ]

    @property
    def num_features(self) -> int:
        return len(self.feature_names())

    def fit(self, history: Sequence[Impression]) -> "CFFeatureExtractor":
        """Build co-feedback similarity and host/category priors."""
        joins_by_event: dict[int, list[int]] = {}
        clicks_by_event: dict[int, list[int]] = {}
        for impression in history:
            event = self.context.event(impression.event_id)
            if impression.participated:
                joins_by_event.setdefault(impression.event_id, []).append(
                    impression.user_id
                )
                key = (impression.user_id, event.host_id)
                self._host_joins[key] = self._host_joins.get(key, 0) + 1
                category_key = (impression.user_id, event.category)
                self._user_category_joins[category_key] = (
                    self._user_category_joins.get(category_key, 0) + 1
                )
            if impression.clicked:
                clicks_by_event.setdefault(impression.event_id, []).append(
                    impression.user_id
                )
                key = (impression.user_id, event.host_id)
                self._host_clicks[key] = self._host_clicks.get(key, 0) + 1
        for users in joins_by_event.values():
            self._join_cf.add_group(sorted(set(users)))
        for users in clicks_by_event.values():
            self._click_cf.add_group(sorted(set(users)))
        self._join_cf.finalize()
        self._click_cf.finalize()
        self._fitted = True
        return self

    def compute_row(
        self, impression: Impression, state: TimelineState
    ) -> np.ndarray:
        """CF feature vector for one impression given the live state."""
        if not self._fitted:
            raise RuntimeError("extractor is not fitted")
        user_id = impression.user_id
        event = self.context.event(impression.event_id)
        friends = self.context.friend_sets[user_id]
        attendees = state.attendees_of(event.event_id)
        clickers = state.clickers_of(event.event_id)

        friends_joined = len(friends & attendees)
        friends_clicked = len(friends & clickers)
        num_friends = max(len(friends), 1)

        category_joiners = sum(
            1
            for friend in friends
            if self._user_category_joins.get((friend, event.category), 0) > 0
        )

        return np.array(
            [
                float(friends_joined),
                friends_joined / num_friends,
                float(friends_clicked),
                self._join_cf.score_against(user_id, attendees),
                self._click_cf.score_against(user_id, clickers),
                float(self._join_cf.neighbor_count(user_id)),
                float(self._host_joins.get((user_id, event.host_id), 0)),
                float(self._host_clicks.get((user_id, event.host_id), 0)),
                category_joiners / num_friends,
            ],
            dtype=np.float64,
        )
