"""Base combiner features (the "No-CF" feature set of Table 2).

"The combiner feature set covers standard user and event attributes
and engineered statistics on matching user attributes with event
attributes" (Section 4).  Concretely:

* geometry and timing: user-event distance, time-to-start, event age;
* raw user/event attributes: demographics, text lengths, category id;
* retrieval-style semantic matching: TF-IDF cosine and keyword
  overlap between user document and event text;
* engineered historical statistics (fit on the history split only):
  per-user, per-age-bucket×category and per-city×category
  participation rates, with Laplace smoothing toward the global rate;
* live counters from the timeline replay: event impressions / clicks /
  joins so far.

Everything here is deliberately *not* collaborative filtering — social
propagation features live in :mod:`repro.features.cf_features` so the
Table-2 decomposition is clean.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.entities import Impression
from repro.features.context import FeatureContext
from repro.features.timeline import TimelineState
from repro.text.normalize import split_words

__all__ = ["BaseFeatureExtractor"]

_SMOOTHING = 5.0


class _RateTable:
    """Smoothed participation-rate lookup keyed by arbitrary tuples."""

    def __init__(self, global_rate: float, smoothing: float = _SMOOTHING):
        self.global_rate = global_rate
        self.smoothing = smoothing
        self._joins: dict = {}
        self._trials: dict = {}

    def observe(self, key, participated: bool) -> None:
        self._trials[key] = self._trials.get(key, 0) + 1
        if participated:
            self._joins[key] = self._joins.get(key, 0) + 1

    def rate(self, key) -> float:
        trials = self._trials.get(key, 0)
        joins = self._joins.get(key, 0)
        return (joins + self.smoothing * self.global_rate) / (
            trials + self.smoothing
        )


class BaseFeatureExtractor:
    """Fit on history, then compute per-impression base features."""

    def __init__(self, context: FeatureContext):
        self.context = context
        self._fitted = False
        self._global_rate = 0.0
        self._user_rate: _RateTable | None = None
        self._age_category_rate: _RateTable | None = None
        self._city_category_rate: _RateTable | None = None

    def feature_names(self) -> list[str]:
        return [
            "base_distance",
            "base_proximity",
            "base_same_city",
            "base_hours_to_start",
            "base_event_age_hours",
            "base_event_lifespan_hours",
            "base_lifespan_elapsed_frac",
            "base_title_words",
            "base_description_words",
            "base_category_id",
            "base_user_age_index",
            "base_user_gender_index",
            "base_user_num_friends",
            "base_user_num_pages",
            "base_user_num_keywords",
            "base_tfidf_match",
            "base_keyword_overlap",
            "base_keyword_overlap_norm",
            "base_host_is_friend",
            "base_hist_user_rate",
            "base_hist_age_category_rate",
            "base_hist_city_category_rate",
            "base_event_impressions_now",
            "base_event_clicks_now",
            "base_event_joins_now",
            "base_user_joins_now",
            "base_user_impressions_now",
        ]

    @property
    def num_features(self) -> int:
        return len(self.feature_names())

    def fit(self, history: Sequence[Impression]) -> "BaseFeatureExtractor":
        """Build the engineered rate tables from the history split."""
        positives = sum(1 for imp in history if imp.participated)
        self._global_rate = positives / len(history) if history else 0.0
        self._user_rate = _RateTable(self._global_rate)
        self._age_category_rate = _RateTable(self._global_rate)
        self._city_category_rate = _RateTable(self._global_rate)
        for impression in history:
            user = self.context.user(impression.user_id)
            event = self.context.event(impression.event_id)
            label = impression.participated
            self._user_rate.observe(impression.user_id, label)
            self._age_category_rate.observe(
                (user.categorical.get("age_bucket"), event.category), label
            )
            self._city_category_rate.observe(
                (user.categorical.get("city"), event.category), label
            )
        self._fitted = True
        return self

    def compute_row(
        self, impression: Impression, state: TimelineState
    ) -> np.ndarray:
        """Feature vector for one impression given the live state."""
        if not self._fitted:
            raise RuntimeError("extractor is not fitted")
        user = self.context.user(impression.user_id)
        event = self.context.event(impression.event_id)

        distance = self.context.distance(user, event)
        proximity = float(np.exp(-distance / 18.0))
        same_city = 1.0 if distance < 10.0 else 0.0
        hours_to_start = event.starts_at - impression.shown_at
        event_age = impression.shown_at - event.created_at
        lifespan = event.lifespan_hours
        elapsed_frac = event_age / lifespan if lifespan > 0 else 1.0

        overlap, overlap_norm = self.context.keyword_overlap(
            user.user_id, event.event_id
        )
        host_is_friend = (
            1.0
            if event.host_id in self.context.friend_sets[user.user_id]
            else 0.0
        )

        return np.array(
            [
                distance,
                proximity,
                same_city,
                hours_to_start,
                event_age,
                lifespan,
                elapsed_frac,
                float(len(split_words(event.title))),
                float(len(split_words(event.description))),
                float(self.context.category_id(event.category)),
                float(
                    self.context.age_index.get(
                        user.categorical.get("age_bucket"), -1
                    )
                ),
                float(
                    self.context.gender_index.get(
                        user.categorical.get("gender"), -1
                    )
                ),
                float(len(user.friend_ids)),
                float(len(user.page_ids)),
                float(len(user.keywords)),
                self.context.tfidf_match(user.user_id, event.event_id),
                float(overlap),
                overlap_norm,
                host_is_friend,
                self._user_rate.rate(impression.user_id),
                self._age_category_rate.rate(
                    (user.categorical.get("age_bucket"), event.category)
                ),
                self._city_category_rate.rate(
                    (user.categorical.get("city"), event.category)
                ),
                float(state.event_impressions.get(event.event_id, 0)),
                float(len(state.clickers_of(event.event_id))),
                float(len(state.attendees_of(event.event_id))),
                float(state.user_joins.get(user.user_id, 0)),
                float(state.user_impressions.get(user.user_id, 0)),
            ],
            dtype=np.float64,
        )
