"""Canonical user / event / impression records.

These dataclasses are the contract between the data layer
(:mod:`repro.datagen` or any real data source), the text layer that
assembles model inputs, the feature pipeline, and the evaluation
protocol.  They mirror Section 3 of the paper:

* an **event** "is represented simply by a text document" built from
  its meta texts (title, description, category), plus the structured
  attributes (time, location, host) consumed by the combiner's base
  features;
* a **user** "is represented by a text document and an unordered list
  of id features" — demographic/geographic categorical attributes plus
  text expanded from profile keywords and subscribed page titles;
* an **impression** is one (user, event, timestamp) exposure with a
  binary participation label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["User", "Event", "Impression"]


@dataclass
class User:
    """A social-network user profile.

    Attributes:
        user_id: unique integer id.
        categorical: mapping of categorical feature name to value
            (e.g. ``{"age_bucket": "25-34", "city": "city_3"}``).
            Rendered as ``name=value`` id tokens for the categorical
            extraction module.
        keywords: self-labeled or auto-generated interest keywords.
        page_titles: titles of subscribed pages (text form of the
            user's activity log).
        page_ids: ids of subscribed pages (categorical form of the
            same signal; the paper includes both).
        home_location: (x, y) coordinates on the synthetic map, used
            by the combiner's location-matching base features.
        friend_ids: adjacency in the social graph.
    """

    user_id: int
    categorical: dict[str, str] = field(default_factory=dict)
    keywords: list[str] = field(default_factory=list)
    page_titles: list[str] = field(default_factory=list)
    page_ids: list[int] = field(default_factory=list)
    home_location: tuple[float, float] = (0.0, 0.0)
    friend_ids: list[int] = field(default_factory=list)

    def id_tokens(self) -> list[str]:
        """Render categorical features as an unordered id-token list.

        Each feature-value pair gets a distinct token (Section 3:
        "By assigning each feature-value pair a distinct id, we treat
        all categorical features as id features").
        """
        tokens = [f"{name}={value}" for name, value in sorted(self.categorical.items())]
        tokens.extend(f"page={page_id}" for page_id in self.page_ids)
        return tokens

    def text_document(self) -> str:
        """Combine all user text features into a single document."""
        return " ".join([*self.keywords, *self.page_titles])

    def to_dict(self) -> dict:
        return {
            "user_id": self.user_id,
            "categorical": self.categorical,
            "keywords": self.keywords,
            "page_titles": self.page_titles,
            "page_ids": self.page_ids,
            "home_location": list(self.home_location),
            "friend_ids": self.friend_ids,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "User":
        return cls(
            user_id=payload["user_id"],
            categorical=dict(payload["categorical"]),
            keywords=list(payload["keywords"]),
            page_titles=list(payload["page_titles"]),
            page_ids=list(payload["page_ids"]),
            home_location=tuple(payload["home_location"]),
            friend_ids=list(payload["friend_ids"]),
        )


@dataclass
class Event:
    """A user-managed event.

    Attributes:
        event_id: unique integer id.
        title: short event title.
        description: free-text body.
        category: category label (e.g. ``"food_tasting"``).
        created_at: creation time in hours since epoch of the dataset.
        starts_at: scheduled event time; the event expires afterwards
            (the transiency central to the paper's motivation).
        location: (x, y) coordinates on the synthetic map.
        host_id: user id of the organizer.
    """

    event_id: int
    title: str
    description: str
    category: str
    created_at: float
    starts_at: float
    location: tuple[float, float] = (0.0, 0.0)
    host_id: int = -1

    @property
    def lifespan_hours(self) -> float:
        """Hours from creation to the scheduled start."""
        return self.starts_at - self.created_at

    def is_active(self, at_time: float) -> bool:
        """Whether the event can still be recommended at *at_time*."""
        return self.created_at <= at_time < self.starts_at

    def text_document(self) -> str:
        """Concatenate event meta texts (title, description, category)."""
        return " ".join(
            part for part in (self.title, self.description, self.category) if part
        )

    def to_dict(self) -> dict:
        return {
            "event_id": self.event_id,
            "title": self.title,
            "description": self.description,
            "category": self.category,
            "created_at": self.created_at,
            "starts_at": self.starts_at,
            "location": list(self.location),
            "host_id": self.host_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            event_id=payload["event_id"],
            title=payload["title"],
            description=payload["description"],
            category=payload["category"],
            created_at=payload["created_at"],
            starts_at=payload["starts_at"],
            location=tuple(payload["location"]),
            host_id=payload["host_id"],
        )


@dataclass(frozen=True)
class Impression:
    """One exposure of an event to a user, with its outcome label.

    The label follows Section 5.1: "For one impression, the label is
    given by whether user participation is achieved from the
    impression."  ``clicked`` is the weaker auxiliary feedback type
    (paper Section 5.1 baseline: "multiple collaborative filtering
    features based on different types of user feedback") — a user who
    participates always clicked first.
    """

    user_id: int
    event_id: int
    shown_at: float
    participated: bool
    clicked: bool = False

    def __post_init__(self):
        if self.participated and not self.clicked:
            # Participation implies a click; normalize silently so
            # hand-constructed impressions stay consistent.
            object.__setattr__(self, "clicked", True)

    def to_dict(self) -> dict:
        return {
            "user_id": self.user_id,
            "event_id": self.event_id,
            "shown_at": self.shown_at,
            "participated": self.participated,
            "clicked": self.clicked,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Impression":
        return cls(
            user_id=payload["user_id"],
            event_id=payload["event_id"],
            shown_at=payload["shown_at"],
            participated=payload["participated"],
            clicked=payload.get("clicked", payload["participated"]),
        )
