"""repro — reproduction of "Joint User-Entity Representation Learning
for Event Recommendation in Social Network" (Tang & Liu, ICDE 2017).

Top-level convenience re-exports; see the subpackages for the full
API:

* :mod:`repro.core` — the joint CNN representation model.
* :mod:`repro.nn` — the numpy neural-network substrate.
* :mod:`repro.text` — tokenizers, vocabularies, document encoding.
* :mod:`repro.datagen` — the synthetic social-network event world.
* :mod:`repro.features` — the combiner feature pipeline.
* :mod:`repro.gbdt` — gradient-boosted decision trees.
* :mod:`repro.baselines` — LDA / PLSA / TF-IDF / popularity baselines.
* :mod:`repro.eval` — metrics and the two-stage experiment protocol.
* :mod:`repro.store` — the serving-time representation cache and the
  batched top-K event retrieval index.
* :mod:`repro.obs` — telemetry: metrics, spans, structured logs.
"""

from repro.core import (
    JointModelConfig,
    JointUserEventModel,
    RepresentationService,
    RepresentationTrainer,
    SiameseEventInitializer,
    SimilarEventIndex,
    TrainingConfig,
)
from repro.datagen import DataConfig, EventRecDataset, build_dataset
from repro.entities import Event, Impression, User
from repro.eval import TwoStageExperiment, evaluate_scores, roc_auc
from repro.features import FeatureSetConfig
from repro.gbdt import GBDTClassifier, GBDTConfig
from repro.store import EventIndex, VectorCache
from repro.text import DocumentEncoder

__version__ = "1.0.0"

__all__ = [
    "DataConfig",
    "DocumentEncoder",
    "Event",
    "EventIndex",
    "EventRecDataset",
    "FeatureSetConfig",
    "GBDTClassifier",
    "GBDTConfig",
    "Impression",
    "JointModelConfig",
    "JointUserEventModel",
    "RepresentationService",
    "RepresentationTrainer",
    "SiameseEventInitializer",
    "SimilarEventIndex",
    "TrainingConfig",
    "TwoStageExperiment",
    "User",
    "VectorCache",
    "build_dataset",
    "evaluate_scores",
    "roc_auc",
    "__version__",
]
