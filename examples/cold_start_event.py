"""Cold-start demo: scoring a brand-new event nobody has seen.

The paper's central motivation (Section 1): events have short
lifespans, so by the time feedback accumulates the event has expired.
This example creates an event *after* all training data ends and
compares three scorers on it:

* popularity baseline        — structurally blind (no feedback yet);
* LDA aggregated matcher     — works only for users with history
                               (the homogeneity restriction);
* joint representation model — scores every user from text +
                               heterogeneous attributes alone.

Takes a few minutes: the joint model needs a moderate amount of
impression data before the user tower carries real semantic signal.

Run:  python examples/cold_start_event.py
"""

import numpy as np

from repro.baselines import AggregatedTopicMatcher, LdaModel, PopularityModel
from repro.core import (
    JointModelConfig,
    JointUserEventModel,
    RepresentationService,
    RepresentationTrainer,
    SiameseEventInitializer,
    TrainingConfig,
)
from repro.datagen import DataConfig, build_dataset
from repro.datagen.config import HOURS_PER_WEEK
from repro.entities import Event
from repro.text import DocumentEncoder


def main() -> None:
    dataset = build_dataset(
        DataConfig(
            num_users=700,
            num_events=500,
            num_pages=110,
            num_cities=5,
            audience_size=45,
            seed=13,
        )
    )
    splits = dataset.split()
    history = splits.representation_train

    # --- the cold event: created after every observed impression -----
    cold_event = Event(
        event_id=99999,
        title="bebop trumpet quartet",
        description=(
            "an intimate evening of bebop and improvisation with a "
            "trumpet quartet swing standards and blues to close the night"
        ),
        category="music_live",
        created_at=dataset.config.total_hours,
        starts_at=dataset.config.total_hours + 72.0,
        location=(10.0, 10.0),
        host_id=0,
    )
    print(f"Cold event: {cold_event.title!r} ({cold_event.category})")
    print("No impression, click, or join has ever touched it.\n")

    # --- baseline 1: popularity -------------------------------------
    popularity = PopularityModel().fit(history)
    print(
        "Popularity baseline: event popularity = "
        f"{popularity.event_popularity(cold_event):.3f}  "
        "(zero — nothing to rank with)"
    )

    # --- baseline 2: LDA matcher (user = aggregate of attended events)
    boundary = (dataset.config.weeks - 2) * HOURS_PER_WEEK
    train_events = [e for e in dataset.events if e.created_at < boundary]
    matcher = AggregatedTopicMatcher(
        LdaModel(num_topics=8, num_iterations=30, min_df=2, seed=0)
    ).fit(train_events, history)
    warm_users = [
        user.user_id
        for user in dataset.users
        if not np.allclose(
            matcher.user_mixture(user.user_id), matcher.user_mixture(-1)
        )
    ]
    print(
        f"LDA matcher: can represent only {len(warm_users)}/"
        f"{len(dataset.users)} users (those with attendance history); "
        "the rest fall back to a uniform mixture."
    )

    # --- the joint representation model -----------------------------
    encoder = DocumentEncoder.fit(dataset.users, train_events, min_df=2)
    config = JointModelConfig.bench(seed=0)
    model = JointUserEventModel(config, encoder)
    # Siamese warm start for the event tower (Section 3.2.1) — exactly
    # the remedy the paper proposes for limited user-event observations.
    initializer = SiameseEventInitializer(config, encoder)
    initializer.fit(train_events, TrainingConfig(epochs=4, learning_rate=0.02, seed=0))
    initializer.transfer_to(model)
    pairs_u = [encoder.encode_user(dataset.users_by_id[i.user_id]) for i in history]
    pairs_e = [encoder.encode_event(dataset.events_by_id[i.event_id]) for i in history]
    labels = np.array([1.0 if i.participated else 0.0 for i in history])
    RepresentationTrainer(
        model,
        TrainingConfig(epochs=16, batch_size=64, learning_rate=0.015, patience=6, seed=0),
    ).fit(pairs_u, pairs_e, labels)

    service = RepresentationService(model)

    # Contrast two cohorts of users against two cold events.  Group
    # averages isolate the user-event *interaction* the joint model
    # learned from the per-user and per-event bias directions.
    cold_food = Event(
        event_id=99998,
        title="artisan dessert tasting",
        description=(
            "sample gourmet chocolate pastry and icecream from local "
            "bakery makers a sweet tasting feast for dessert lovers"
        ),
        category="food_tasting",
        created_at=dataset.config.total_hours,
        starts_at=dataset.config.total_hours + 72.0,
        location=(10.0, 10.0),
        host_id=0,
    )
    music_topic, food_topic = 0, 1  # ground-truth topic order
    music_lovers = [
        dataset.users[i]
        for i in np.argsort(-dataset.user_mixtures[:, music_topic])[:25]
    ]
    food_lovers = [
        dataset.users[i]
        for i in np.argsort(-dataset.user_mixtures[:, food_topic])[:25]
    ]

    def mean_score(cohort, event):
        return float(np.mean([service.score(user, event) for user in cohort]))

    mm = mean_score(music_lovers, cold_event)
    mf = mean_score(music_lovers, cold_food)
    fm = mean_score(food_lovers, cold_event)
    ff = mean_score(food_lovers, cold_food)
    print("\nJoint model: cohort × cold-event score matrix (25 users each):")
    print(f"                      {'music event':>12s} {'food event':>12s}")
    print(f"  music-loving users  {mm:+12.4f} {mf:+12.4f}")
    print(f"  food-loving users   {fm:+12.4f} {ff:+12.4f}")
    interaction = (mm - mf) - (fm - ff)
    print(
        f"\nInteraction contrast (music users prefer the music event "
        f"more than food users do): {interaction:+.4f} "
        f"({'correct sign' if interaction > 0 else 'noise at this scale'})"
    )
    print(
        "Both cold events received a usable score for every user — the "
        "popularity and CF paths had nothing."
    )


if __name__ == "__main__":
    main()
