"""Related-events search with the self-supervised Siamese event model.

Section 3.2.1: the Siamese initializer "alone is already an excellent
event-only semantic model.  It improves the semantic-search in events
('related events' in which user information is not considered)".

This example trains the Siamese tower on (title, body) pairings only —
no user feedback — then:

1. retrieves semantically similar events for a seed event (Table 3),
   reporting the lexical overlap of each hit;
2. traces the pooled activations of one event text back to its top
   contributing words per convolution window size (Figure 7).

Run:  python examples/related_events.py
"""

from repro.core import (
    JointModelConfig,
    SiameseEventInitializer,
    SimilarEventIndex,
    TrainingConfig,
    format_trace,
    trace_top_words,
)
from repro.datagen import DataConfig, build_dataset
from repro.text import DocumentEncoder


def main() -> None:
    dataset = build_dataset(
        DataConfig(
            num_users=50,  # users are irrelevant here; keep them few
            num_events=400,
            num_pages=30,
            num_cities=4,
            audience_size=5,
            seed=21,
        )
    )
    events = dataset.events
    encoder = DocumentEncoder.fit([], events, min_df=2)

    config = JointModelConfig(
        embedding_dim=16,
        module_dim=16,
        hidden_dim=32,
        representation_dim=16,
        dtype="float32",
        seed=0,
    )
    initializer = SiameseEventInitializer(config, encoder)
    print(f"Training Siamese event model on {len(events)} events "
          "(title/body pairing, no user feedback) ...")
    history = initializer.fit(
        events, TrainingConfig(epochs=5, learning_rate=0.02, seed=0)
    )
    print(f"  losses per epoch: {[round(l, 3) for l in history.losses]}")

    # ------------------------------------------------------------------
    # Table-3 style: similar events for a seed, with lexical overlap.
    # ------------------------------------------------------------------
    vectors = initializer.encode_texts([e.text_document() for e in events])
    index = SimilarEventIndex(events, vectors)
    seed = events[0]
    print(f"\nSeed event [{seed.category}]: {seed.title}")
    print(f"  {seed.description[:90]} ...")
    print("Most similar events (cosine / word-overlap):")
    for hit in index.query(seed.event_id, top_k=4):
        print(
            f"  {hit.similarity:.3f} / {hit.word_overlap:.2f}  "
            f"[{hit.event.category:<16s}] {hit.event.title}"
        )
    high = index.pairs_above(0.95)
    print(f"\n{len(high)} event pairs exceed similarity 0.95 corpus-wide "
          "(the paper's Table-3 harvesting threshold).")

    # ------------------------------------------------------------------
    # Figure-7 style: trace pooled activations back to words.
    # ------------------------------------------------------------------
    sample = max(events, key=lambda e: len(e.description))
    text = sample.text_document()
    trace = trace_top_words(initializer.tower, encoder, text, top_k=5)
    print(f"\nTop words per convolution window for: {sample.title!r}")
    for window, attributions in sorted(trace.items()):
        rendered = ", ".join(
            f"{a.word}({a.weight:.1f})" for a in attributions
        )
        print(f"  window {window}: {rendered}")
    print("\nAnnotated text (Figure-7 style):")
    print(" ", format_trace(text, trace, max_chars=320))


if __name__ == "__main__":
    main()
