"""The paper's full evaluation pipeline at a reduced scale.

Runs everything Section 5 describes: synthetic impression log →
4w+1w+1w split → joint representation training (with Siamese init) →
GBDT combiners under the Table-1 and Table-2 feature settings →
PR60/PR80/AUC tables and ASCII P/R curves (Figures 5 & 6).

This is the small sibling of the benchmark harness; expect a few
minutes of wall-clock.  For the full-scale numbers see
``pytest benchmarks/``.

Run:  python examples/full_experiment.py
"""

import time

from repro.core import JointModelConfig, TrainingConfig
from repro.datagen import DataConfig, build_dataset
from repro.eval import (
    TwoStageExperiment,
    format_importances,
    format_table,
    render_pr_curves,
)
from repro.gbdt import GBDTConfig


def main() -> None:
    started = time.time()
    print("Building dataset ...")
    dataset = build_dataset(
        DataConfig(
            num_users=400,
            num_events=320,
            num_pages=80,
            num_cities=4,
            audience_size=35,
            seed=5,
        )
    )
    print(f"  {len(dataset.impressions)} impressions")

    experiment = TwoStageExperiment(
        dataset,
        model_config=JointModelConfig(
            embedding_dim=16,
            module_dim=16,
            hidden_dim=32,
            representation_dim=16,
            dtype="float32",
            seed=0,
        ),
        training_config=TrainingConfig(
            epochs=10, batch_size=64, learning_rate=0.015, patience=4, seed=0
        ),
        gbdt_config=GBDTConfig(num_trees=120, max_leaves=12),
        use_siamese_init=True,
    )
    print("Training representation model ...")
    experiment.prepare()
    history = experiment.training_history
    print(
        f"  {history.epochs_run} epochs "
        f"(early stop: {history.stopped_early}), "
        f"{time.time() - started:.0f}s elapsed"
    )

    print("\nRunning Table-1 settings ...")
    table1 = experiment.run_table1()
    print(format_table(table1, "TABLE 1 — integration settings"))
    print("\nFigure 5 — P/R curves")
    print(render_pr_curves(table1))

    print("\nRunning Table-2 settings ...")
    table2 = experiment.run_table2()
    print(format_table(table2, "TABLE 2 — feature combinations"))
    print("\nFigure 6 — P/R curves")
    print(render_pr_curves(table2))

    print()
    print(format_importances(table2["All Features"], top_k=10))
    print(f"\nTotal wall-clock: {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
