"""Quickstart: train a joint representation model and recommend events.

Builds a small synthetic social-network world, trains the two-tower
CNN representation model on four weeks of impressions, and then ranks
the *currently active* events for a user through the cached serving
facade — the end-to-end path of the paper in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    JointModelConfig,
    JointUserEventModel,
    RepresentationService,
    RepresentationTrainer,
    TrainingConfig,
)
from repro.datagen import DataConfig, build_dataset
from repro.datagen.config import HOURS_PER_WEEK
from repro.text import DocumentEncoder


def main() -> None:
    # 1. A synthetic world standing in for production traffic.
    print("Building synthetic world ...")
    dataset = build_dataset(
        DataConfig(
            num_users=300,
            num_events=240,
            num_pages=60,
            num_cities=4,
            audience_size=30,
            seed=7,
        )
    )
    summary = dataset.summary()
    print(
        f"  {summary['num_users']:.0f} users, {summary['num_events']:.0f} events, "
        f"{summary['num_impressions']:.0f} impressions "
        f"(positive rate {summary['positive_rate']:.2f})"
    )

    # 2. Date-disjoint split and representation training (Section 5.1).
    splits = dataset.split()
    boundary = (dataset.config.weeks - 2) * HOURS_PER_WEEK
    train_events = [e for e in dataset.events if e.created_at < boundary]
    encoder = DocumentEncoder.fit(dataset.users, train_events, min_df=2)
    print(f"  lookup tables: {encoder.vocab_sizes()}")

    model = JointUserEventModel(
        JointModelConfig(
            embedding_dim=16,
            module_dim=16,
            hidden_dim=32,
            representation_dim=16,
            dtype="float32",
            seed=0,
        ),
        encoder,
    )
    pairs_u = [encoder.encode_user(dataset.users_by_id[i.user_id])
               for i in splits.representation_train]
    pairs_e = [encoder.encode_event(dataset.events_by_id[i.event_id])
               for i in splits.representation_train]
    labels = np.array(
        [1.0 if i.participated else 0.0 for i in splits.representation_train]
    )
    print(f"Training on {len(labels)} impression pairs ...")
    trainer = RepresentationTrainer(
        model, TrainingConfig(epochs=6, batch_size=64, learning_rate=0.015, seed=0)
    )
    history = trainer.fit(pairs_u, pairs_e, labels)
    print(
        f"  {history.epochs_run} epochs, "
        f"final validation loss {history.validation_losses[-1]:.4f}"
    )

    # 3. Serve recommendations through the cached facade (Section 4).
    service = RepresentationService(model)
    service.warm(dataset.users, dataset.events)
    user = dataset.users[0]
    now = 5.2 * HOURS_PER_WEEK  # a moment inside the evaluation week
    ranked = service.rank_events(user, dataset.events, at_time=now, top_k=5)

    print(f"\nUser {user.user_id} (keywords: {', '.join(user.keywords[:5])})")
    print(f"Top recommendations at t={now:.0f}h (active events only):")
    for scored in ranked:
        print(
            f"  {scored.score:+.3f}  [{scored.event.category:<16s}] "
            f"{scored.event.title}"
        )
    print(
        f"\nCache: {service.cache.stats.hits} hits / "
        f"{service.cache.stats.lookups} lookups"
    )


if __name__ == "__main__":
    main()
